// AVX2/FMA kernel table. This is the ONLY translation unit compiled with
// -mavx2 -mfma; it is added to the build when the compiler supports those
// flags, and the table is selected at runtime only when CPUID reports both
// features (see simd.cc).
//
// All floating-point arithmetic here is explicit intrinsics and the TU is
// compiled with -ffp-contract=off: a multiply-add fuses exactly where an
// _mm256_fmadd_pd is written, never behind the compiler's back. That is
// what makes the contracts in simd.h checkable — vec_exp's masked tail is
// the same vector arithmetic as its body (position-uniform), row_dot's
// scalar tail is a genuine mul+add (so lane4_dot can replay it bitwise),
// and the scalar epilogues of the gemm/adam kernels stay plain mul+add.
#include "linalg/simd.h"

#if defined(CERL_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

namespace cerl::linalg::simd {
namespace {

// ---- vec_exp -------------------------------------------------------------

// One vector of the Cody-Waite + Estrin exp from the scalar kernel, with
// each multiply-add fused. The clamp replicates the scalar ternaries via
// compare+blend (ordered compares: NaN inputs pass through to a NaN
// result, exactly like the scalar kernel).
inline __m256d ExpVec(__m256d x) {
  const __m256d kHi = _mm256_set1_pd(708.0);
  const __m256d kLo = _mm256_set1_pd(-708.0);
  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634074);
  const __m256d kLn2Hi = _mm256_set1_pd(6.93147180369123816490e-01);
  const __m256d kLn2Lo = _mm256_set1_pd(1.90821492927058770002e-10);
  const __m256d kShift = _mm256_set1_pd(6755399441055744.0);  // 1.5 * 2^52

  x = _mm256_blendv_pd(x, kHi, _mm256_cmp_pd(x, kHi, _CMP_GT_OQ));
  x = _mm256_blendv_pd(x, kLo, _mm256_cmp_pd(x, kLo, _CMP_LT_OQ));
  const __m256d t = _mm256_fmadd_pd(x, kLog2e, kShift);
  const __m256d kd = _mm256_sub_pd(t, kShift);
  __m256d r = _mm256_fnmadd_pd(kd, kLn2Hi, x);
  r = _mm256_fnmadd_pd(kd, kLn2Lo, r);
  const __m256d r2 = _mm256_mul_pd(r, r);
  const __m256d r4 = _mm256_mul_pd(r2, r2);
  const __m256d r6 = _mm256_mul_pd(r4, r2);
  const __m256d lo = _mm256_fmadd_pd(
      r4,
      _mm256_fmadd_pd(r, _mm256_set1_pd(1.0 / 120.0),
                      _mm256_set1_pd(1.0 / 24.0)),
      _mm256_fmadd_pd(
          r2,
          _mm256_fmadd_pd(r, _mm256_set1_pd(1.0 / 6.0), _mm256_set1_pd(0.5)),
          _mm256_add_pd(_mm256_set1_pd(1.0), r)));
  const __m256d hi = _mm256_fmadd_pd(
      r4,
      _mm256_fmadd_pd(r, _mm256_set1_pd(1.0 / 39916800.0),
                      _mm256_set1_pd(1.0 / 3628800.0)),
      _mm256_fmadd_pd(r2,
                      _mm256_fmadd_pd(r, _mm256_set1_pd(1.0 / 362880.0),
                                      _mm256_set1_pd(1.0 / 40320.0)),
                      _mm256_fmadd_pd(r, _mm256_set1_pd(1.0 / 5040.0),
                                      _mm256_set1_pd(1.0 / 720.0))));
  const __m256d p = _mm256_fmadd_pd(r6, hi, lo);
  // 2^k assembled in the exponent field; k is exact because t and kShift
  // share an exponent.
  const __m256i t_bits = _mm256_castpd_si256(t);
  const __m256i shift_bits = _mm256_castpd_si256(kShift);
  const __m256i k = _mm256_sub_epi64(t_bits, shift_bits);
  const __m256i scale_bits =
      _mm256_slli_epi64(_mm256_add_epi64(k, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(p, _mm256_castsi256_pd(scale_bits));
}

void VecExpAvx2(const double* in, double* out, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, ExpVec(_mm256_loadu_pd(in + i)));
  }
  const int rem = n - i;
  if (rem > 0) {
    // Masked full-width tail: the remaining elements run the IDENTICAL
    // vector arithmetic as the body, so results are position-uniform
    // (element value depends only on the input value, never on where the
    // element sits relative to the array end). Dead lanes load as 0.0 and
    // their results are discarded by the masked store.
    const int64_t on = -1;
    __m256i mask = _mm256_setzero_si256();
    switch (rem) {
      case 3: mask = _mm256_set_epi64x(0, on, on, on); break;
      case 2: mask = _mm256_set_epi64x(0, 0, on, on); break;
      case 1: mask = _mm256_set_epi64x(0, 0, 0, on); break;
    }
    const __m256d x = _mm256_maskload_pd(in + i, mask);
    _mm256_maskstore_pd(out + i, mask, ExpVec(x));
  }
}

// ---- row_dot -------------------------------------------------------------

double RowDotAvx2(const double* row, const double* x, int n) {
  // Vector lane m carries the scalar kernel's accumulator s_m; the main
  // loop fuses each multiply-add. The remainder is a plain scalar mul+add
  // into s0 and the combine keeps the (s0+s1)+(s2+s3) order.
  __m256d acc = _mm256_setzero_pd();
  int c = 0;
  for (; c + 4 <= n; c += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(row + c), _mm256_loadu_pd(x + c),
                          acc);
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double s0 = s[0];
  for (; c < n; ++c) s0 += row[c] * x[c];
  return (s0 + s[1]) + (s[2] + s[3]);
}

// ---- lane4_dot -----------------------------------------------------------

void Lane4DotAvx2(const double* k4, const double* v4, int n, double* out) {
  // Bitwise replay of RowDotAvx2 with lanes = problems: accumulator m takes
  // elements j % 4 == m via the same fused multiply-add, the tail is the
  // same plain mul+add into accumulator 0, and the combine is the same
  // (s0+s1)+(s2+s3) — per lane, out[p] == RowDotAvx2(lane p).
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const double* kp = k4 + 4 * j;
    const double* vp = v4 + 4 * j;
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(kp), _mm256_loadu_pd(vp), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(kp + 4), _mm256_loadu_pd(vp + 4),
                           acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(kp + 8), _mm256_loadu_pd(vp + 8),
                           acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(kp + 12), _mm256_loadu_pd(vp + 12),
                           acc3);
  }
  for (; j < n; ++j) {
    acc0 = _mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(k4 + 4 * j), _mm256_loadu_pd(v4 + 4 * j)),
        acc0);
  }
  _mm256_storeu_pd(
      out, _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
}

// ---- GEMM microkernels ---------------------------------------------------

void GemmRow2Avx2(double alpha, const double* arow0, const double* arow1,
                  const double* bpanel, int kw, int nw, double* crow0,
                  double* crow1) {
  int k = 0;
  for (; k + 4 <= kw; k += 4) {
    const double a00 = alpha * arow0[k];
    const double a01 = alpha * arow0[k + 1];
    const double a02 = alpha * arow0[k + 2];
    const double a03 = alpha * arow0[k + 3];
    const double a10 = alpha * arow1[k];
    const double a11 = alpha * arow1[k + 1];
    const double a12 = alpha * arow1[k + 2];
    const double a13 = alpha * arow1[k + 3];
    const __m256d a00v = _mm256_set1_pd(a00);
    const __m256d a01v = _mm256_set1_pd(a01);
    const __m256d a02v = _mm256_set1_pd(a02);
    const __m256d a03v = _mm256_set1_pd(a03);
    const __m256d a10v = _mm256_set1_pd(a10);
    const __m256d a11v = _mm256_set1_pd(a11);
    const __m256d a12v = _mm256_set1_pd(a12);
    const __m256d a13v = _mm256_set1_pd(a13);
    const double* b0 = bpanel + static_cast<size_t>(k) * nw;
    const double* b1 = b0 + nw;
    const double* b2 = b1 + nw;
    const double* b3 = b2 + nw;
    int n = 0;
    for (; n + 4 <= nw; n += 4) {
      const __m256d b0v = _mm256_loadu_pd(b0 + n);
      const __m256d b1v = _mm256_loadu_pd(b1 + n);
      const __m256d b2v = _mm256_loadu_pd(b2 + n);
      const __m256d b3v = _mm256_loadu_pd(b3 + n);
      __m256d t0 = _mm256_mul_pd(a00v, b0v);
      t0 = _mm256_fmadd_pd(a01v, b1v, t0);
      t0 = _mm256_fmadd_pd(a02v, b2v, t0);
      t0 = _mm256_fmadd_pd(a03v, b3v, t0);
      _mm256_storeu_pd(crow0 + n,
                       _mm256_add_pd(_mm256_loadu_pd(crow0 + n), t0));
      __m256d t1 = _mm256_mul_pd(a10v, b0v);
      t1 = _mm256_fmadd_pd(a11v, b1v, t1);
      t1 = _mm256_fmadd_pd(a12v, b2v, t1);
      t1 = _mm256_fmadd_pd(a13v, b3v, t1);
      _mm256_storeu_pd(crow1 + n,
                       _mm256_add_pd(_mm256_loadu_pd(crow1 + n), t1));
    }
    for (; n < nw; ++n) {
      crow0[n] += a00 * b0[n] + a01 * b1[n] + a02 * b2[n] + a03 * b3[n];
      crow1[n] += a10 * b0[n] + a11 * b1[n] + a12 * b2[n] + a13 * b3[n];
    }
  }
  for (; k < kw; ++k) {
    const double a0k = alpha * arow0[k];
    const double a1k = alpha * arow1[k];
    const __m256d a0v = _mm256_set1_pd(a0k);
    const __m256d a1v = _mm256_set1_pd(a1k);
    const double* brow = bpanel + static_cast<size_t>(k) * nw;
    int n = 0;
    for (; n + 4 <= nw; n += 4) {
      const __m256d bv = _mm256_loadu_pd(brow + n);
      _mm256_storeu_pd(
          crow0 + n, _mm256_fmadd_pd(a0v, bv, _mm256_loadu_pd(crow0 + n)));
      _mm256_storeu_pd(
          crow1 + n, _mm256_fmadd_pd(a1v, bv, _mm256_loadu_pd(crow1 + n)));
    }
    for (; n < nw; ++n) {
      crow0[n] += a0k * brow[n];
      crow1[n] += a1k * brow[n];
    }
  }
}

void GemmRow1Avx2(double alpha, const double* arow, const double* bpanel,
                  int kw, int nw, double* crow) {
  int k = 0;
  for (; k + 4 <= kw; k += 4) {
    const double a0 = alpha * arow[k];
    const double a1 = alpha * arow[k + 1];
    const double a2 = alpha * arow[k + 2];
    const double a3 = alpha * arow[k + 3];
    const __m256d a0v = _mm256_set1_pd(a0);
    const __m256d a1v = _mm256_set1_pd(a1);
    const __m256d a2v = _mm256_set1_pd(a2);
    const __m256d a3v = _mm256_set1_pd(a3);
    const double* b0 = bpanel + static_cast<size_t>(k) * nw;
    const double* b1 = b0 + nw;
    const double* b2 = b1 + nw;
    const double* b3 = b2 + nw;
    int n = 0;
    for (; n + 4 <= nw; n += 4) {
      __m256d t = _mm256_mul_pd(a0v, _mm256_loadu_pd(b0 + n));
      t = _mm256_fmadd_pd(a1v, _mm256_loadu_pd(b1 + n), t);
      t = _mm256_fmadd_pd(a2v, _mm256_loadu_pd(b2 + n), t);
      t = _mm256_fmadd_pd(a3v, _mm256_loadu_pd(b3 + n), t);
      _mm256_storeu_pd(crow + n, _mm256_add_pd(_mm256_loadu_pd(crow + n), t));
    }
    for (; n < nw; ++n) {
      crow[n] += a0 * b0[n] + a1 * b1[n] + a2 * b2[n] + a3 * b3[n];
    }
  }
  for (; k < kw; ++k) {
    const double ak = alpha * arow[k];
    const __m256d av = _mm256_set1_pd(ak);
    const double* brow = bpanel + static_cast<size_t>(k) * nw;
    int n = 0;
    for (; n + 4 <= nw; n += 4) {
      _mm256_storeu_pd(crow + n,
                       _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + n),
                                       _mm256_loadu_pd(crow + n)));
    }
    for (; n < nw; ++n) crow[n] += ak * brow[n];
  }
}

// ---- Adam ----------------------------------------------------------------

void AdamUpdateAvx2(double* value, const double* grad, double* m, double* v,
                    int64_t n, double beta1, double beta2, double inv_bc1,
                    double inv_bc2, double eps, double lr,
                    double weight_decay) {
  const __m256d b1v = _mm256_set1_pd(beta1);
  const __m256d b2v = _mm256_set1_pd(beta2);
  const __m256d omb1 = _mm256_set1_pd(1.0 - beta1);
  const __m256d omb2 = _mm256_set1_pd(1.0 - beta2);
  const __m256d bc1 = _mm256_set1_pd(inv_bc1);
  const __m256d bc2 = _mm256_set1_pd(inv_bc2);
  const __m256d epsv = _mm256_set1_pd(eps);
  const __m256d lrv = _mm256_set1_pd(lr);
  const __m256d wdv = _mm256_set1_pd(weight_decay);
  const bool decay = weight_decay != 0.0;
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d g = _mm256_loadu_pd(grad + j);
    __m256d mj = _mm256_loadu_pd(m + j);
    __m256d vj = _mm256_loadu_pd(v + j);
    mj = _mm256_fmadd_pd(b1v, mj, _mm256_mul_pd(omb1, g));
    vj = _mm256_fmadd_pd(b2v, vj, _mm256_mul_pd(_mm256_mul_pd(omb2, g), g));
    _mm256_storeu_pd(m + j, mj);
    _mm256_storeu_pd(v + j, vj);
    const __m256d mhat = _mm256_mul_pd(mj, bc1);
    const __m256d vhat = _mm256_mul_pd(vj, bc2);
    __m256d update =
        _mm256_div_pd(mhat, _mm256_add_pd(_mm256_sqrt_pd(vhat), epsv));
    const __m256d val = _mm256_loadu_pd(value + j);
    if (decay) update = _mm256_fmadd_pd(wdv, val, update);
    _mm256_storeu_pd(value + j, _mm256_fnmadd_pd(lrv, update, val));
  }
  const int rem = static_cast<int>(n - j);
  if (rem > 0) {
    // Masked full-width tail, same vector arithmetic as the body: the
    // update is position-uniform, so ParallelFor may split a parameter at
    // any boundary and every split produces identical bits (the simd.h
    // adam_update contract). Dead lanes read as 0.0 (sqrt(0) and /eps are
    // benign) and are never stored.
    const int64_t on = -1;
    __m256i mask = _mm256_setzero_si256();
    switch (rem) {
      case 3: mask = _mm256_set_epi64x(0, on, on, on); break;
      case 2: mask = _mm256_set_epi64x(0, 0, on, on); break;
      case 1: mask = _mm256_set_epi64x(0, 0, 0, on); break;
    }
    const __m256d g = _mm256_maskload_pd(grad + j, mask);
    __m256d mj = _mm256_maskload_pd(m + j, mask);
    __m256d vj = _mm256_maskload_pd(v + j, mask);
    mj = _mm256_fmadd_pd(b1v, mj, _mm256_mul_pd(omb1, g));
    vj = _mm256_fmadd_pd(b2v, vj, _mm256_mul_pd(_mm256_mul_pd(omb2, g), g));
    _mm256_maskstore_pd(m + j, mask, mj);
    _mm256_maskstore_pd(v + j, mask, vj);
    const __m256d mhat = _mm256_mul_pd(mj, bc1);
    const __m256d vhat = _mm256_mul_pd(vj, bc2);
    __m256d update =
        _mm256_div_pd(mhat, _mm256_add_pd(_mm256_sqrt_pd(vhat), epsv));
    const __m256d val = _mm256_maskload_pd(value + j, mask);
    if (decay) update = _mm256_fmadd_pd(wdv, val, update);
    _mm256_maskstore_pd(value + j, mask, _mm256_fnmadd_pd(lrv, update, val));
  }
}

// ---- fused micro-solver whole-sweep lane kernels -------------------------
//
// One __m256d vector = the four lanes of one logical element, so the solo
// solver's per-element scalar ops map 1:1 onto vector ops. Everything
// except lane4_matvec (which rides Lane4DotAvx2's FMA) is PLAIN mul / add /
// div / fabs — individually rounded IEEE ops in the solo evaluation order —
// making these kernels bitwise identical to their scalar-table twins.

void Lane4MatVecAvx2(const double* k4, const double* v4, int n1, int n2,
                     double* kv4) {
  for (int i = 0; i < n1; ++i) {
    Lane4DotAvx2(k4 + static_cast<size_t>(i) * n2 * 4, v4, n2, kv4 + i * 4);
  }
}

void Lane4KtuAvx2(const double* k4, const double* u4, int n1, int n2,
                  double* ktu4) {
  const __m256d zero = _mm256_setzero_pd();
  for (int j = 0; j < n2; ++j) _mm256_storeu_pd(ktu4 + j * 4, zero);
  for (int i = 0; i < n1; ++i) {
    const double* krow = k4 + static_cast<size_t>(i) * n2 * 4;
    const __m256d ui = _mm256_loadu_pd(u4 + i * 4);
    for (int j = 0; j < n2; ++j) {
      // fmadd: the scalar twin's std::fma — correctly rounded, so the
      // tables agree bitwise and the accumulate is one uop instead of two.
      _mm256_storeu_pd(ktu4 + j * 4,
                       _mm256_fmadd_pd(_mm256_loadu_pd(krow + j * 4), ui,
                                       _mm256_loadu_pd(ktu4 + j * 4)));
    }
  }
}

void Lane4DivMaskedAvx2(double a, const double* x4, const unsigned char* mask,
                        int n, double* out4) {
  const int64_t on = -1;
  const __m256i m = _mm256_set_epi64x(mask[3] ? on : 0, mask[2] ? on : 0,
                                      mask[1] ? on : 0, mask[0] ? on : 0);
  const __m256d mv = _mm256_castsi256_pd(m);
  const __m256d av = _mm256_set1_pd(a);
  for (int i = 0; i < n; ++i) {
    // Frozen lanes keep their previous bits via blend; the division runs
    // full-width (IEEE div never traps with default masked exceptions, and
    // the frozen-lane quotients are discarded).
    const __m256d q = _mm256_div_pd(av, _mm256_loadu_pd(x4 + i * 4));
    const __m256d old = _mm256_loadu_pd(out4 + i * 4);
    _mm256_storeu_pd(out4 + i * 4, _mm256_blendv_pd(old, q, mv));
  }
}

void Lane4ViolationAvx2(const double* u4, const double* x4, int n, double a,
                        double* out) {
  const __m256d av = _mm256_set1_pd(a);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  __m256d acc = _mm256_setzero_pd();
  for (int i = 0; i < n; ++i) {
    // fabs(u*x - a): plain mul, sub, bit-and — each lane accumulates in
    // serial i order, exactly the scalar reduction.
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(u4 + i * 4), _mm256_loadu_pd(x4 + i * 4));
    acc = _mm256_add_pd(acc, _mm256_and_pd(_mm256_sub_pd(prod, av), abs_mask));
  }
  _mm256_storeu_pd(out, acc);
}

void Lane4PlanAvx2(const double* u4, const double* k4, const double* c4,
                   const double* v4, int n1, int n2, double* p4,
                   double* rows4) {
  for (int i = 0; i < n1; ++i) {
    const size_t base = static_cast<size_t>(i) * n2 * 4;
    const __m256d ui = _mm256_loadu_pd(u4 + i * 4);
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    int j = 0;
    for (; j + 2 <= n2; j += 2) {
      // (ui * k) * v — left-associated plain multiplies, like the scalar
      // twin; even j into s0, odd j into s1.
      const __m256d p0 = _mm256_mul_pd(
          _mm256_mul_pd(ui, _mm256_loadu_pd(k4 + base + j * 4)),
          _mm256_loadu_pd(v4 + j * 4));
      const __m256d p1 = _mm256_mul_pd(
          _mm256_mul_pd(ui, _mm256_loadu_pd(k4 + base + (j + 1) * 4)),
          _mm256_loadu_pd(v4 + (j + 1) * 4));
      _mm256_storeu_pd(p4 + base + j * 4, p0);
      _mm256_storeu_pd(p4 + base + (j + 1) * 4, p1);
      s0 = _mm256_add_pd(
          s0, _mm256_mul_pd(p0, _mm256_loadu_pd(c4 + base + j * 4)));
      s1 = _mm256_add_pd(
          s1, _mm256_mul_pd(p1, _mm256_loadu_pd(c4 + base + (j + 1) * 4)));
    }
    for (; j < n2; ++j) {
      const __m256d p0 = _mm256_mul_pd(
          _mm256_mul_pd(ui, _mm256_loadu_pd(k4 + base + j * 4)),
          _mm256_loadu_pd(v4 + j * 4));
      _mm256_storeu_pd(p4 + base + j * 4, p0);
      s0 = _mm256_add_pd(
          s0, _mm256_mul_pd(p0, _mm256_loadu_pd(c4 + base + j * 4)));
    }
    _mm256_storeu_pd(rows4 + i * 4, _mm256_add_pd(s0, s1));
  }
}

// ---- plain elementwise accumulation kernels ------------------------------
//
// All plain mul / add / div / compare-select — no FMA anywhere — so each of
// these is bitwise identical to its scalar-table twin (the simd.h plain
// elementwise contract). Tails use masked full-width arithmetic like
// vec_exp / adam_update: dead lanes load 0.0, their results are discarded.

inline __m256i TailMask(int rem) {
  const int64_t on = -1;
  switch (rem) {
    case 3: return _mm256_set_epi64x(0, on, on, on);
    case 2: return _mm256_set_epi64x(0, 0, on, on);
    case 1: return _mm256_set_epi64x(0, 0, 0, on);
    default: return _mm256_setzero_si256();
  }
}

void VecAccumAvx2(const double* x, double* y, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  const int rem = static_cast<int>(n - i);
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(y + i, mask,
                        _mm256_add_pd(_mm256_maskload_pd(y + i, mask),
                                      _mm256_maskload_pd(x + i, mask)));
  }
}

void VecAxpyAvx2(double a, const double* x, double* y, int64_t n) {
  const __m256d av = _mm256_set1_pd(a);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // fmadd: the scalar twin's std::fma, bit-identical across the tables.
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
  }
  const int rem = static_cast<int>(n - i);
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(
        y + i, mask,
        _mm256_fmadd_pd(av, _mm256_maskload_pd(x + i, mask),
                        _mm256_maskload_pd(y + i, mask)));
  }
}

void VecMulAccumAvx2(const double* x1, const double* x2, double* y,
                     int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(_mm256_loadu_pd(x1 + i),
                               _mm256_loadu_pd(x2 + i),
                               _mm256_loadu_pd(y + i)));
  }
  const int rem = static_cast<int>(n - i);
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(
        y + i, mask,
        _mm256_fmadd_pd(_mm256_maskload_pd(x1 + i, mask),
                        _mm256_maskload_pd(x2 + i, mask),
                        _mm256_maskload_pd(y + i, mask)));
  }
}

void VecAddScalarAvx2(double a, double* y, int64_t n) {
  const __m256d av = _mm256_set1_pd(a);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), av));
  }
  const int rem = static_cast<int>(n - i);
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(
        y + i, mask, _mm256_add_pd(_mm256_maskload_pd(y + i, mask), av));
  }
}

// ga += g * dfdx(x, y) with dfdx supplied as a vector functor. Division in
// dead tail lanes is benign (IEEE div never traps with default masked
// exceptions) and the results are discarded by the masked store.
template <typename DFn>
inline void EwBackwardLoop(const double* g, const double* x, const double* y,
                           double* ga, int64_t n, DFn dfdx) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = dfdx(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    const __m256d prod = _mm256_mul_pd(_mm256_loadu_pd(g + i), d);
    _mm256_storeu_pd(ga + i, _mm256_add_pd(_mm256_loadu_pd(ga + i), prod));
  }
  const int rem = static_cast<int>(n - i);
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    const __m256d d = dfdx(_mm256_maskload_pd(x + i, mask),
                           _mm256_maskload_pd(y + i, mask));
    const __m256d prod = _mm256_mul_pd(_mm256_maskload_pd(g + i, mask), d);
    _mm256_maskstore_pd(
        ga + i, mask, _mm256_add_pd(_mm256_maskload_pd(ga + i, mask), prod));
  }
}

void EwBackwardAvx2(int op, const double* g, const double* x, const double* y,
                    double* ga, int64_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d sign_bit =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x8000000000000000ull));
  // Each case is the EwGrad formula from simd.h in plain vector ops; the
  // compare+blend/and forms reproduce the scalar ternaries bit-exactly.
  switch (static_cast<EwGrad>(op)) {
    case EwGrad::kReciprocal:
      EwBackwardLoop(g, x, y, ga, n, [&](__m256d, __m256d yv) {
        // (-y) * y: the sign flip is exact, the multiply rounds once.
        return _mm256_mul_pd(_mm256_xor_pd(yv, sign_bit), yv);
      });
      break;
    case EwGrad::kRelu:
      EwBackwardLoop(g, x, y, ga, n, [&](__m256d xv, __m256d) {
        return _mm256_and_pd(_mm256_cmp_pd(xv, zero, _CMP_GT_OQ), one);
      });
      break;
    case EwGrad::kElu:
      EwBackwardLoop(g, x, y, ga, n, [&](__m256d xv, __m256d yv) {
        return _mm256_blendv_pd(_mm256_add_pd(yv, one), one,
                                _mm256_cmp_pd(xv, zero, _CMP_GT_OQ));
      });
      break;
    case EwGrad::kTanh:
      EwBackwardLoop(g, x, y, ga, n, [&](__m256d, __m256d yv) {
        return _mm256_sub_pd(one, _mm256_mul_pd(yv, yv));
      });
      break;
    case EwGrad::kSigmoid:
      EwBackwardLoop(g, x, y, ga, n, [&](__m256d, __m256d yv) {
        return _mm256_mul_pd(yv, _mm256_sub_pd(one, yv));
      });
      break;
    case EwGrad::kExp:
      EwBackwardLoop(g, x, y, ga, n,
                     [&](__m256d, __m256d yv) { return yv; });
      break;
    case EwGrad::kLog:
      EwBackwardLoop(g, x, y, ga, n, [&](__m256d xv, __m256d) {
        return _mm256_div_pd(one, xv);
      });
      break;
    case EwGrad::kSqrt:
      EwBackwardLoop(g, x, y, ga, n, [&](__m256d, __m256d yv) {
        const __m256d q = _mm256_div_pd(_mm256_set1_pd(0.5), yv);
        return _mm256_and_pd(_mm256_cmp_pd(yv, zero, _CMP_GT_OQ), q);
      });
      break;
    case EwGrad::kSquare:
      EwBackwardLoop(g, x, y, ga, n, [&](__m256d xv, __m256d) {
        return _mm256_mul_pd(_mm256_set1_pd(2.0), xv);
      });
      break;
    case EwGrad::kAbs:
      EwBackwardLoop(g, x, y, ga, n, [&](__m256d xv, __m256d) {
        const __m256d pos =
            _mm256_and_pd(_mm256_cmp_pd(xv, zero, _CMP_GT_OQ), one);
        const __m256d neg = _mm256_and_pd(
            _mm256_cmp_pd(xv, zero, _CMP_LT_OQ), _mm256_set1_pd(-1.0));
        return _mm256_or_pd(pos, neg);
      });
      break;
  }
}

// ---- whole-array forward kernels -----------------------------------------
//
// All plain (or IEEE-exact, for vsqrtpd) vector ops with masked full-width
// tails: bitwise identical to the scalar table. Pure elementwise, so full
// in-place aliasing is fine — each vector is loaded before its slot is
// stored.

// out = f(x1, x2) elementwise for a binary vector functor.
template <typename Fn>
inline void BinaryLoop(const double* x1, const double* x2, double* out,
                       int64_t n, Fn f) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     f(_mm256_loadu_pd(x1 + i), _mm256_loadu_pd(x2 + i)));
  }
  const int rem = static_cast<int>(n - i);
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(out + i, mask,
                        f(_mm256_maskload_pd(x1 + i, mask),
                          _mm256_maskload_pd(x2 + i, mask)));
  }
}

void VecAddAvx2(const double* x1, const double* x2, double* out, int64_t n) {
  BinaryLoop(x1, x2, out, n,
             [](__m256d a, __m256d b) { return _mm256_add_pd(a, b); });
}

void VecSubAvx2(const double* x1, const double* x2, double* out, int64_t n) {
  BinaryLoop(x1, x2, out, n,
             [](__m256d a, __m256d b) { return _mm256_sub_pd(a, b); });
}

void VecMulAvx2(const double* x1, const double* x2, double* out, int64_t n) {
  BinaryLoop(x1, x2, out, n,
             [](__m256d a, __m256d b) { return _mm256_mul_pd(a, b); });
}

void VecScaleAvx2(double a, const double* x, double* out, int64_t n) {
  const __m256d av = _mm256_set1_pd(a);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  }
  const int rem = static_cast<int>(n - i);
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(
        out + i, mask, _mm256_mul_pd(av, _mm256_maskload_pd(x + i, mask)));
  }
}

void VecDivScalarAvx2(double a, const double* x, double* out, int64_t n) {
  const __m256d av = _mm256_set1_pd(a);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_div_pd(av, _mm256_loadu_pd(x + i)));
  }
  const int rem = static_cast<int>(n - i);
  if (rem > 0) {
    // Dead lanes load 0.0; a/0 = inf never traps and is discarded.
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(
        out + i, mask, _mm256_div_pd(av, _mm256_maskload_pd(x + i, mask)));
  }
}

void AddRowBroadcastAvx2(const double* a, const double* b, int rows, int cols,
                         double* out) {
  for (int r = 0; r < rows; ++r) {
    BinaryLoop(a + static_cast<size_t>(r) * cols, b,
               out + static_cast<size_t>(r) * cols, cols,
               [](__m256d x, __m256d y) { return _mm256_add_pd(x, y); });
  }
}

void MulColBroadcastAvx2(const double* a, const double* s, int rows, int cols,
                         double* out) {
  for (int r = 0; r < rows; ++r) {
    VecScaleAvx2(s[r], a + static_cast<size_t>(r) * cols,
                 out + static_cast<size_t>(r) * cols, cols);
  }
}

void MatVecAvx2(const double* mat, int64_t ld, const double* x, int rows,
                int cols, double* out) {
  // Rows are independent dot products; interleaving four RowDotAvx2
  // accumulator chains hides the loop-carried fmadd latency a single chain
  // exposes at the short (~44-element) row lengths of the per-stream
  // Sinkhorn solves. Each row runs exactly RowDotAvx2's operation
  // sequence — same fmadds, same tail, same (s0+s1)+(s2+s3) combine — so
  // out[r] is bitwise RowDotAvx2(row r) regardless of the blocking.
  int r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* r0 = mat + static_cast<size_t>(r) * ld;
    const double* r1 = r0 + ld;
    const double* r2 = r1 + ld;
    const double* r3 = r2 + ld;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    int c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m256d xv = _mm256_loadu_pd(x + c);
      a0 = _mm256_fmadd_pd(_mm256_loadu_pd(r0 + c), xv, a0);
      a1 = _mm256_fmadd_pd(_mm256_loadu_pd(r1 + c), xv, a1);
      a2 = _mm256_fmadd_pd(_mm256_loadu_pd(r2 + c), xv, a2);
      a3 = _mm256_fmadd_pd(_mm256_loadu_pd(r3 + c), xv, a3);
    }
    alignas(32) double s0[4], s1[4], s2[4], s3[4];
    _mm256_store_pd(s0, a0);
    _mm256_store_pd(s1, a1);
    _mm256_store_pd(s2, a2);
    _mm256_store_pd(s3, a3);
    double t0 = s0[0], t1 = s1[0], t2 = s2[0], t3 = s3[0];
    for (; c < cols; ++c) {
      const double xc = x[c];
      t0 += r0[c] * xc;
      t1 += r1[c] * xc;
      t2 += r2[c] * xc;
      t3 += r3[c] * xc;
    }
    out[r] = (t0 + s0[1]) + (s0[2] + s0[3]);
    out[r + 1] = (t1 + s1[1]) + (s1[2] + s1[3]);
    out[r + 2] = (t2 + s2[1]) + (s2[2] + s2[3]);
    out[r + 3] = (t3 + s3[1]) + (s3[2] + s3[3]);
  }
  for (; r < rows; ++r) {
    out[r] = RowDotAvx2(mat + static_cast<size_t>(r) * ld, x, cols);
  }
}

void MatTVecAccumAvx2(const double* mat, int64_t ld, const double* u,
                      int rows, int cols, double* out) {
  // Blocked over 4 rows: out[c] still accumulates with r strictly
  // ascending per element (fma(u_r0, ·, fma-chain), each fma correctly
  // rounded), so the result is bitwise the row-at-a-time scalar reference —
  // blocking only cuts the out[] load/store traffic 4x.
  const __m256d zero = _mm256_setzero_pd();
  int c = 0;
  for (; c + 4 <= cols; c += 4) _mm256_storeu_pd(out + c, zero);
  for (; c < cols; ++c) out[c] = 0.0;
  int r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* row0 = mat + static_cast<size_t>(r) * ld;
    const double* row1 = row0 + ld;
    const double* row2 = row1 + ld;
    const double* row3 = row2 + ld;
    const __m256d u0 = _mm256_set1_pd(u[r]);
    const __m256d u1 = _mm256_set1_pd(u[r + 1]);
    const __m256d u2 = _mm256_set1_pd(u[r + 2]);
    const __m256d u3 = _mm256_set1_pd(u[r + 3]);
    int j = 0;
    for (; j + 4 <= cols; j += 4) {
      __m256d acc = _mm256_loadu_pd(out + j);
      acc = _mm256_fmadd_pd(u0, _mm256_loadu_pd(row0 + j), acc);
      acc = _mm256_fmadd_pd(u1, _mm256_loadu_pd(row1 + j), acc);
      acc = _mm256_fmadd_pd(u2, _mm256_loadu_pd(row2 + j), acc);
      acc = _mm256_fmadd_pd(u3, _mm256_loadu_pd(row3 + j), acc);
      _mm256_storeu_pd(out + j, acc);
    }
    for (; j < cols; ++j) {
      double acc = out[j];
      acc = __builtin_fma(u[r], row0[j], acc);
      acc = __builtin_fma(u[r + 1], row1[j], acc);
      acc = __builtin_fma(u[r + 2], row2[j], acc);
      acc = __builtin_fma(u[r + 3], row3[j], acc);
      out[j] = acc;
    }
  }
  for (; r < rows; ++r) {
    VecAxpyAvx2(u[r], mat + static_cast<size_t>(r) * ld, out, cols);
  }
}

// out = f(x) elementwise for a unary vector functor.
template <typename Fn>
inline void UnaryLoop(const double* x, double* out, int64_t n, Fn f) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, f(_mm256_loadu_pd(x + i)));
  }
  const int rem = static_cast<int>(n - i);
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(out + i, mask, f(_mm256_maskload_pd(x + i, mask)));
  }
}

void EwForwardAvx2(int op, const double* x, double* out, int64_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  switch (static_cast<EwFwd>(op)) {
    case EwFwd::kReciprocal:
      UnaryLoop(x, out, n, [](__m256d xv) {
        return _mm256_div_pd(_mm256_set1_pd(1.0), xv);
      });
      break;
    case EwFwd::kRelu:
      UnaryLoop(x, out, n, [&](__m256d xv) {
        // x > 0 ? x : 0 — NaN compares false, so NaN maps to 0 exactly
        // like the scalar ternary.
        return _mm256_and_pd(_mm256_cmp_pd(xv, zero, _CMP_GT_OQ), xv);
      });
      break;
    case EwFwd::kSqrt:
      // vsqrtpd is correctly rounded — bitwise std::sqrt.
      UnaryLoop(x, out, n, [](__m256d xv) { return _mm256_sqrt_pd(xv); });
      break;
    case EwFwd::kSquare:
      UnaryLoop(x, out, n,
                [](__m256d xv) { return _mm256_mul_pd(xv, xv); });
      break;
    case EwFwd::kAbs:
      UnaryLoop(x, out, n, [&](__m256d xv) {
        return _mm256_and_pd(xv, abs_mask);
      });
      break;
  }
}

constexpr KernelSet kAvx2Set = {
    "avx2",       VecExpAvx2,      RowDotAvx2,
    GemmRow2Avx2, GemmRow1Avx2,    AdamUpdateAvx2,
    Lane4DotAvx2, Lane4MatVecAvx2, Lane4KtuAvx2,
    Lane4DivMaskedAvx2, Lane4ViolationAvx2, Lane4PlanAvx2,
    VecAccumAvx2, VecAxpyAvx2,     VecMulAccumAvx2,
    VecAddScalarAvx2, EwBackwardAvx2,
    VecAddAvx2,   VecSubAvx2,      VecMulAvx2,
    VecScaleAvx2, VecDivScalarAvx2,
    AddRowBroadcastAvx2, MulColBroadcastAvx2,
    MatVecAvx2,   MatTVecAccumAvx2, EwForwardAvx2,
};

}  // namespace

const KernelSet* Avx2KernelSet() { return &kAvx2Set; }

}  // namespace cerl::linalg::simd

#endif  // CERL_HAVE_AVX2_KERNELS
