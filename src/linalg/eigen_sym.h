// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
// Used by the correlation-matrix generator (Hardin-Garcia-Golan Algorithm 3
// scales cross-block noise by the smallest eigenvalue) and by validation
// code. O(n^3) per sweep, fine for the <= few-hundred-dim matrices here.
#pragma once

#include "linalg/matrix.h"
#include "util/status.h"

namespace cerl::linalg {

/// Eigenvalues (ascending) and matching eigenvectors (columns) of a
/// symmetric matrix.
struct EigenSym {
  Vector values;      ///< ascending eigenvalues
  Matrix vectors;     ///< column j is the eigenvector for values[j]
};

/// Computes the full decomposition of symmetric `a`. Fails if the Jacobi
/// sweeps do not converge (non-symmetric or pathological input).
Result<EigenSym> EigenSymDecompose(const Matrix& a, int max_sweeps = 64,
                                   double tol = 1e-12);

/// Smallest eigenvalue of symmetric `a`.
Result<double> MinEigenvalue(const Matrix& a);

}  // namespace cerl::linalg
