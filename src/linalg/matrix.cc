#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "linalg/simd.h"

#include "util/thread_pool.h"

namespace cerl::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& r : rows) {
    CERL_CHECK_EQ(static_cast<int>(r.size()), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::FromData(int rows, int cols, std::vector<double> data) {
  CERL_CHECK_EQ(static_cast<int64_t>(rows) * cols,
                static_cast<int64_t>(data.size()));
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::RowVector(const Vector& v) {
  return FromData(1, static_cast<int>(v.size()), v);
}

Matrix Matrix::ColVector(const Vector& v) {
  return FromData(static_cast<int>(v.size()), 1, v);
}

Vector Matrix::RowCopy(int r) const {
  CERL_CHECK(r >= 0 && r < rows_);
  return Vector(row(r), row(r) + cols_);
}

Vector Matrix::ColCopy(int c) const {
  CERL_CHECK(c >= 0 && c < cols_);
  Vector out(rows_);
  for (int r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(int r, const Vector& v) {
  CERL_CHECK(r >= 0 && r < rows_);
  CERL_CHECK_EQ(static_cast<int>(v.size()), cols_);
  std::copy(v.begin(), v.end(), row(r));
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const double* src = row(r);
    for (int c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

Matrix Matrix::GatherRows(const std::vector<int>& indices) const {
  return GatherRows(indices.data(), static_cast<int>(indices.size()));
}

Matrix Matrix::GatherRows(const int* indices, int n) const {
  Matrix out;
  GatherRowsInto(indices, n, &out);
  return out;
}

void Matrix::GatherRowsInto(const int* indices, int n, Matrix* out) const {
  CERL_CHECK_GE(n, 0);
  if (out->rows() != n || out->cols() != cols_) *out = Matrix(n, cols_);
  // Split across rows only when each chunk moves enough bytes to beat the
  // fork/join cost; gathers are pure copies, so the split is deterministic.
  const int64_t grain =
      std::max<int64_t>(1, static_cast<int64_t>(32 * 1024) / (cols_ + 1));
  ParallelFor(
      0, n,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const int r = indices[i];
          CERL_CHECK(r >= 0 && r < rows_);
          std::copy(row(r), row(r) + cols_, out->row(static_cast<int>(i)));
        }
      },
      grain);
}

void Matrix::Scale(double s) {
  simd::Kernels().vec_scale(s, data_.data(), data_.data(), size());
}

void Matrix::Add(const Matrix& other) {
  CERL_CHECK(SameShape(other));
  simd::Kernels().vec_accum(other.data_.data(), data_.data(), size());
}

void Matrix::Sub(const Matrix& other) {
  CERL_CHECK(SameShape(other));
  simd::Kernels().vec_sub(data_.data(), other.data_.data(), data_.data(),
                          size());
}

void Matrix::Axpy(double alpha, const Matrix& x) {
  CERL_CHECK(SameShape(x));
  simd::Kernels().vec_axpy(alpha, x.data_.data(), data_.data(), size());
}

void Matrix::CopyFrom(const Matrix& other) {
  CERL_CHECK(SameShape(other));
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  CERL_CHECK(a.SameShape(b));
  double m = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::string out = "[" + std::to_string(rows_) + "x" + std::to_string(cols_) +
                    "]\n";
  const int rr = std::min(rows_, max_rows);
  const int cc = std::min(cols_, max_cols);
  char buf[32];
  for (int r = 0; r < rr; ++r) {
    for (int c = 0; c < cc; ++c) {
      std::snprintf(buf, sizeof(buf), "% 10.4f", (*this)(r, c));
      out += buf;
    }
    if (cc < cols_) out += " ...";
    out += "\n";
  }
  if (rr < rows_) out += "...\n";
  return out;
}

}  // namespace cerl::linalg
