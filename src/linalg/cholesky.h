// Cholesky factorization A = L * L^T for symmetric positive-definite
// matrices, with triangular solves and log-determinant. Non-PD inputs are a
// data condition (e.g. a candidate correlation matrix), so the factorization
// reports failure through Status rather than aborting.
#pragma once

#include "linalg/matrix.h"
#include "util/status.h"

namespace cerl::linalg {

/// Holds the lower-triangular factor L with A = L L^T.
class Cholesky {
 public:
  /// Factors `a` (symmetric; only the lower triangle is read). Fails with
  /// NumericalError when a non-positive pivot is encountered.
  static Result<Cholesky> Factor(const Matrix& a);

  /// The lower-triangular factor.
  const Matrix& L() const { return l_; }

  /// Solves A x = b via forward/backward substitution.
  Vector Solve(const Vector& b) const;

  /// log(det(A)) = 2 * sum(log(L_ii)).
  double LogDet() const;

  /// Returns L * v (used to transform standard-normal draws into N(0, A)).
  Vector LowerTimes(const Vector& v) const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// True if `a` is symmetric positive definite (factorization succeeds).
bool IsPositiveDefinite(const Matrix& a);

}  // namespace cerl::linalg
