// Assorted dense-matrix helpers shared by the OT layer, statistics, and the
// causal models: pairwise distances, column summaries, standardization.
#pragma once

#include "linalg/matrix.h"

namespace cerl::linalg {

/// D(i, j) = || a_i - b_j ||^2 for row vectors a_i of `a` and b_j of `b`.
/// Computed as |a|^2 + |b|^2 - 2 a.b with a single GEMM; clamped at 0.
Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b);

/// Writes exp(in[i]) into out[i] for i in [0, n); in == out aliasing is
/// ALLOWED and part of the contract — element i is read before it is
/// written and no element is revisited, in every kernel implementation
/// (the Sinkhorn kernel build exponentiates its matrix in place through
/// this entry point). Partial overlap other than in == out is not.
/// Dispatches to the runtime-selected kernel set (linalg/simd.h): scalar
/// and AVX2/FMA share the same branch-free Cody-Waite range reduction plus
/// degree-11 polynomial. Accuracy is ~1e-14 relative to std::exp; scalar
/// vs AVX2 results differ by FMA rounding only. Arguments are clamped to
/// [-708, 708]: below that the result saturates near DBL_MIN instead of
/// flushing through subnormals to zero (callers treating <= 1e-300 as
/// underflow, like the Sinkhorn scaling solver, see identical behaviour).
void VecExp(const double* in, double* out, int n);

/// Column means of `m` (length cols).
Vector ColumnMeans(const Matrix& m);

/// Column standard deviations (population, ddof = 0); zero-variance columns
/// report `min_std` to keep downstream divisions safe.
Vector ColumnStds(const Matrix& m, double min_std = 1e-12);

/// Sample covariance matrix of rows of `m` (ddof = 1).
Matrix SampleCovariance(const Matrix& m);

/// Pearson correlation matrix of columns of `m`.
Matrix SampleCorrelation(const Matrix& m);

/// Returns (m - mean) / std per column, using the supplied statistics.
Matrix Standardize(const Matrix& m, const Vector& mean, const Vector& std);

/// Mean of a vector.
double Mean(const Vector& v);

/// Population variance of a vector.
double Variance(const Vector& v);

/// Pearson correlation between two equal-length vectors (0 if degenerate).
double PearsonCorrelation(const Vector& a, const Vector& b);

}  // namespace cerl::linalg
