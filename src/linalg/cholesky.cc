#include "linalg/cholesky.h"

#include <cmath>

namespace cerl::linalg {

Result<Cholesky> Cholesky::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const int n = a.rows();
  Matrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError(
          "matrix is not positive definite (pivot " + std::to_string(j) +
          " = " + std::to_string(diag) + ")");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::Solve(const Vector& b) const {
  const int n = l_.rows();
  CERL_CHECK_EQ(static_cast<int>(b.size()), n);
  // Forward: L y = b.
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    double s = b[i];
    for (int k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  // Backward: L^T x = y.
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double s = y[i];
    for (int k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

double Cholesky::LogDet() const {
  double s = 0.0;
  for (int i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Vector Cholesky::LowerTimes(const Vector& v) const {
  const int n = l_.rows();
  CERL_CHECK_EQ(static_cast<int>(v.size()), n);
  Vector out(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (int k = 0; k <= i; ++k) s += l_(i, k) * v[k];
    out[i] = s;
  }
  return out;
}

bool IsPositiveDefinite(const Matrix& a) {
  if (a.rows() != a.cols()) return false;
  return Cholesky::Factor(a).ok();
}

}  // namespace cerl::linalg
