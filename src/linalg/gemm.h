// General matrix multiply with optional operand transposes:
//   C = alpha * op(A) * op(B) + beta * C
// Implemented as a cache-blocked kernel parallelized over row panels via the
// global thread pool. This is the performance-critical primitive behind all
// neural-network training in the repository.
#pragma once

#include "linalg/matrix.h"

namespace cerl::linalg {

/// Transpose selector for Gemm operands.
enum class Trans { kNo, kYes };

/// C = alpha * op(A) * op(B) + beta * C. Shapes are checked; C must already
/// have the result shape.
void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c);

/// Returns A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Returns op(A) * op(B) with explicit transpose flags.
Matrix MatMulT(Trans trans_a, Trans trans_b, const Matrix& a, const Matrix& b);

/// y = A * x (matrix-vector product).
Vector MatVec(const Matrix& a, const Vector& x);

/// y = A * x written into caller-owned storage (resized to a.rows(); no
/// allocation once capacity is established). The per-row reduction order is
/// fixed, so results are identical for any thread-pool split. `grain`
/// overrides the parallel split granularity (rows per chunk): -1 picks a
/// cache-based default, INT64_MAX forces the serial path.
void MatVecInto(const Matrix& a, const Vector& x, Vector* y,
                int64_t grain = -1);

}  // namespace cerl::linalg
