#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cerl::linalg {

Result<EigenSym> EigenSymDecompose(const Matrix& a, int max_sweeps,
                                   double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("EigenSym requires a square matrix");
  }
  const int n = a.rows();
  Matrix m = a;  // Working copy reduced to diagonal form.
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&m, n]() {
    double s = 0.0;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) s += m(i, j) * m(i, j);
    return std::sqrt(2.0 * s);
  };

  const double scale = std::max(1.0, m.FrobeniusNorm());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol * scale) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/columns p and q of m.
        for (int k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (int k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        // Accumulate eigenvectors.
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (off_diagonal_norm() > 1e-6 * scale) {
    return Status::NumericalError("Jacobi eigendecomposition did not converge");
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns to match.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&m](int i, int j) { return m(i, i) < m(j, j); });

  EigenSym out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (int j = 0; j < n; ++j) {
    out.values[j] = m(order[j], order[j]);
    for (int i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

Result<double> MinEigenvalue(const Matrix& a) {
  auto decomp = EigenSymDecompose(a);
  if (!decomp.ok()) return decomp.status();
  return decomp.value().values.front();
}

}  // namespace cerl::linalg
