// Scalar kernel table and one-time dispatch resolution. The scalar bodies
// are the former inline loops of ops.cc / gemm.cc / optim.cc moved here
// verbatim: they define the reference arithmetic (order and operation
// shape) that the AVX2 table either matches bitwise (vec_exp tail handling,
// lane4_dot) or tracks within documented FMA rounding (row_dot, gemm,
// adam). This file stays at the SSE2 baseline so the compiler cannot
// contract multiply-adds — the scalar table is FMA-free by construction.
#include "linalg/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace cerl::linalg::simd {

#if defined(CERL_HAVE_AVX2_KERNELS)
// Defined in simd_avx2.cc (the only TU compiled with -mavx2 -mfma).
const KernelSet* Avx2KernelSet();
#endif

namespace {

void VecExpScalar(const double* in, double* out, int n) {
  // exp(x) = 2^k * exp(r) with r = x - k*ln2 (|r| <= ln2/2). k is extracted
  // with the round-to-nearest shifter trick (adding 1.5 * 2^52 places the
  // integer in the low mantissa bits), exp(r) is a degree-11 Taylor
  // polynomial in Estrin form (max relative error ~9e-15 on the reduced
  // range; the even/odd split shortens the 11-FMA Horner dependency chain
  // to ~7 steps), and the 2^k scale is assembled directly in the exponent
  // field. Every step is add/mul/compare-select/integer bit work on
  // independent lanes, so gcc vectorizes the loop at -O3 even at the SSE2
  // baseline (no roundpd/cvttpd needed). The clamp ternaries only become
  // branch-free selects under -fno-trapping-math, set for this file in
  // src/CMakeLists.txt — without it the loop stays scalar (correct, ~1.7x
  // slower).
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  int64_t shift_bits;
  std::memcpy(&shift_bits, &kShift, sizeof(shift_bits));
  for (int i = 0; i < n; ++i) {
    double x = in[i];
    x = x > 708.0 ? 708.0 : x;
    x = x < -708.0 ? -708.0 : x;
    const double t = x * kLog2e + kShift;  // nearest integer, in-mantissa
    const double kd = t - kShift;
    const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
    const double r2 = r * r;
    const double r4 = r2 * r2;
    const double r6 = r4 * r2;
    const double lo = (1.0 + r) + r2 * (0.5 + r * (1.0 / 6.0)) +
                      r4 * (1.0 / 24.0 + r * (1.0 / 120.0));
    const double hi = (1.0 / 720.0 + r * (1.0 / 5040.0)) +
                      r2 * (1.0 / 40320.0 + r * (1.0 / 362880.0)) +
                      r4 * (1.0 / 3628800.0 + r * (1.0 / 39916800.0));
    const double p = lo + r6 * hi;
    int64_t t_bits;
    std::memcpy(&t_bits, &t, sizeof(t_bits));
    const int64_t k = t_bits - shift_bits;  // shared exponent => exact
    const int64_t scale_bits = (k + 1023) << 52;
    double scale;
    std::memcpy(&scale, &scale_bits, sizeof(scale));
    out[i] = p * scale;
  }
}

double RowDotScalar(const double* row, const double* x, int n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int c = 0;
  for (; c + 4 <= n; c += 4) {
    s0 += row[c] * x[c];
    s1 += row[c + 1] * x[c + 1];
    s2 += row[c + 2] * x[c + 2];
    s3 += row[c + 3] * x[c + 3];
  }
  for (; c < n; ++c) s0 += row[c] * x[c];
  return (s0 + s1) + (s2 + s3);
}

void GemmRow2Scalar(double alpha, const double* arow0, const double* arow1,
                    const double* bpanel, int kw, int nw, double* crow0,
                    double* crow1) {
  int k = 0;
  for (; k + 4 <= kw; k += 4) {
    const double a00 = alpha * arow0[k];
    const double a01 = alpha * arow0[k + 1];
    const double a02 = alpha * arow0[k + 2];
    const double a03 = alpha * arow0[k + 3];
    const double a10 = alpha * arow1[k];
    const double a11 = alpha * arow1[k + 1];
    const double a12 = alpha * arow1[k + 2];
    const double a13 = alpha * arow1[k + 3];
    const double* b0 = bpanel + static_cast<size_t>(k) * nw;
    const double* b1 = b0 + nw;
    const double* b2 = b1 + nw;
    const double* b3 = b2 + nw;
    for (int n = 0; n < nw; ++n) {
      crow0[n] += a00 * b0[n] + a01 * b1[n] + a02 * b2[n] + a03 * b3[n];
      crow1[n] += a10 * b0[n] + a11 * b1[n] + a12 * b2[n] + a13 * b3[n];
    }
  }
  for (; k < kw; ++k) {
    const double a0k = alpha * arow0[k];
    const double a1k = alpha * arow1[k];
    const double* brow = bpanel + static_cast<size_t>(k) * nw;
    for (int n = 0; n < nw; ++n) {
      crow0[n] += a0k * brow[n];
      crow1[n] += a1k * brow[n];
    }
  }
}

void GemmRow1Scalar(double alpha, const double* arow, const double* bpanel,
                    int kw, int nw, double* crow) {
  int k = 0;
  for (; k + 4 <= kw; k += 4) {
    const double a0 = alpha * arow[k];
    const double a1 = alpha * arow[k + 1];
    const double a2 = alpha * arow[k + 2];
    const double a3 = alpha * arow[k + 3];
    const double* b0 = bpanel + static_cast<size_t>(k) * nw;
    const double* b1 = b0 + nw;
    const double* b2 = b1 + nw;
    const double* b3 = b2 + nw;
    for (int n = 0; n < nw; ++n) {
      crow[n] += a0 * b0[n] + a1 * b1[n] + a2 * b2[n] + a3 * b3[n];
    }
  }
  for (; k < kw; ++k) {
    const double ak = alpha * arow[k];
    const double* brow = bpanel + static_cast<size_t>(k) * nw;
    for (int n = 0; n < nw; ++n) crow[n] += ak * brow[n];
  }
}

void AdamUpdateScalar(double* value, const double* grad, double* m, double* v,
                      int64_t n, double beta1, double beta2, double inv_bc1,
                      double inv_bc2, double eps, double lr,
                      double weight_decay) {
  for (int64_t j = 0; j < n; ++j) {
    const double g = grad[j];
    m[j] = beta1 * m[j] + (1.0 - beta1) * g;
    v[j] = beta2 * v[j] + (1.0 - beta2) * g * g;
    const double mhat = m[j] * inv_bc1;
    const double vhat = v[j] * inv_bc2;
    double update = mhat / (std::sqrt(vhat) + eps);
    if (weight_decay != 0.0) {
      update += weight_decay * value[j];
    }
    value[j] -= lr * update;
  }
}

void Lane4DotScalar(const double* k4, const double* v4, int n, double* out) {
  // Per lane, this is RowDotScalar on the strided lane data: same
  // accumulator mapping (j % 4), same tail-into-s0, same combine.
  for (int p = 0; p < 4; ++p) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      s0 += k4[4 * j + p] * v4[4 * j + p];
      s1 += k4[4 * (j + 1) + p] * v4[4 * (j + 1) + p];
      s2 += k4[4 * (j + 2) + p] * v4[4 * (j + 2) + p];
      s3 += k4[4 * (j + 3) + p] * v4[4 * (j + 3) + p];
    }
    for (; j < n; ++j) s0 += k4[4 * j + p] * v4[4 * j + p];
    out[p] = (s0 + s1) + (s2 + s3);
  }
}

void Lane4MatVecScalar(const double* k4, const double* v4, int n1, int n2,
                       double* kv4) {
  for (int i = 0; i < n1; ++i) {
    Lane4DotScalar(k4 + static_cast<size_t>(i) * n2 * 4, v4, n2, kv4 + i * 4);
  }
}

void Lane4KtuScalar(const double* k4, const double* u4, int n1, int n2,
                    double* ktu4) {
  for (int j = 0; j < 4 * n2; ++j) ktu4[j] = 0.0;
  for (int i = 0; i < n1; ++i) {
    const double* krow = k4 + static_cast<size_t>(i) * n2 * 4;
    const double* ui = u4 + i * 4;
    for (int j = 0; j < n2; ++j) {
      for (int p = 0; p < 4; ++p) {
        // Fused multiply-add, like mat_tvec_accum (whose solo accumulation
        // order this kernel replays lane by lane). fma is correctly rounded,
        // so scalar and AVX2 stay bit-identical here.
        ktu4[j * 4 + p] = std::fma(krow[j * 4 + p], ui[p], ktu4[j * 4 + p]);
      }
    }
  }
}

void Lane4DivMaskedScalar(double a, const double* x4,
                          const unsigned char* mask, int n, double* out4) {
  for (int p = 0; p < 4; ++p) {
    if (!mask[p]) continue;
    for (int i = 0; i < n; ++i) out4[i * 4 + p] = a / x4[i * 4 + p];
  }
}

void Lane4ViolationScalar(const double* u4, const double* x4, int n, double a,
                          double* out) {
  for (int p = 0; p < 4; ++p) {
    double violation = 0.0;
    for (int i = 0; i < n; ++i) {
      violation += std::fabs(u4[i * 4 + p] * x4[i * 4 + p] - a);
    }
    out[p] = violation;
  }
}

void Lane4PlanScalar(const double* u4, const double* k4, const double* c4,
                     const double* v4, int n1, int n2, double* p4,
                     double* rows4) {
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < n1; ++i) {
      const size_t base = static_cast<size_t>(i) * n2 * 4;
      const double ui = u4[i * 4 + p];
      double s0 = 0.0, s1 = 0.0;
      int j = 0;
      for (; j + 2 <= n2; j += 2) {
        const double p0 = ui * k4[base + j * 4 + p] * v4[j * 4 + p];
        const double p1 =
            ui * k4[base + (j + 1) * 4 + p] * v4[(j + 1) * 4 + p];
        p4[base + j * 4 + p] = p0;
        p4[base + (j + 1) * 4 + p] = p1;
        s0 += p0 * c4[base + j * 4 + p];
        s1 += p1 * c4[base + (j + 1) * 4 + p];
      }
      for (; j < n2; ++j) {
        const double p0 = ui * k4[base + j * 4 + p] * v4[j * 4 + p];
        p4[base + j * 4 + p] = p0;
        s0 += p0 * c4[base + j * 4 + p];
      }
      rows4[i * 4 + p] = s0 + s1;
    }
  }
}

void VecAccumScalar(const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

void VecAxpyScalar(double a, const double* x, double* y, int64_t n) {
  // Fused multiply-add: correctly rounded, so the scalar and AVX2 tables
  // agree bitwise while the accumulate costs one op instead of two.
  for (int64_t i = 0; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

void VecMulAccumScalar(const double* x1, const double* x2, double* y,
                       int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fma(x1[i], x2[i], y[i]);
}

void VecAddScalarScalar(double a, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += a;
}

void EwBackwardScalar(int op, const double* g, const double* x,
                      const double* y, double* ga, int64_t n) {
  // One loop per derivative so the formula inlines (a per-element indirect
  // call costs more than the arithmetic for these cheap expressions). The
  // formulas are the EwGrad contract in simd.h, verbatim.
  switch (static_cast<EwGrad>(op)) {
    case EwGrad::kReciprocal:
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * (-y[i] * y[i]);
      break;
    case EwGrad::kRelu:
      for (int64_t i = 0; i < n; ++i) {
        ga[i] += g[i] * (x[i] > 0.0 ? 1.0 : 0.0);
      }
      break;
    case EwGrad::kElu:
      for (int64_t i = 0; i < n; ++i) {
        ga[i] += g[i] * (x[i] > 0.0 ? 1.0 : y[i] + 1.0);
      }
      break;
    case EwGrad::kTanh:
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * (1.0 - y[i] * y[i]);
      break;
    case EwGrad::kSigmoid:
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * (y[i] * (1.0 - y[i]));
      break;
    case EwGrad::kExp:
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * y[i];
      break;
    case EwGrad::kLog:
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * (1.0 / x[i]);
      break;
    case EwGrad::kSqrt:
      for (int64_t i = 0; i < n; ++i) {
        ga[i] += g[i] * (y[i] > 0.0 ? 0.5 / y[i] : 0.0);
      }
      break;
    case EwGrad::kSquare:
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * (2.0 * x[i]);
      break;
    case EwGrad::kAbs:
      for (int64_t i = 0; i < n; ++i) {
        ga[i] += g[i] * (x[i] > 0.0 ? 1.0 : (x[i] < 0.0 ? -1.0 : 0.0));
      }
      break;
  }
}

void VecAddScalarKernel(const double* x1, const double* x2, double* out,
                        int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = x1[i] + x2[i];
}

void VecSubScalar(const double* x1, const double* x2, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = x1[i] - x2[i];
}

void VecMulScalar(const double* x1, const double* x2, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = x1[i] * x2[i];
}

void VecScaleScalar(double a, const double* x, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a * x[i];
}

void VecDivScalarScalar(double a, const double* x, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a / x[i];
}

void AddRowBroadcastScalar(const double* a, const double* b, int rows,
                           int cols, double* out) {
  for (int r = 0; r < rows; ++r) {
    const double* src = a + static_cast<size_t>(r) * cols;
    double* dst = out + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c] + b[c];
  }
}

void MulColBroadcastScalar(const double* a, const double* s, int rows,
                           int cols, double* out) {
  for (int r = 0; r < rows; ++r) {
    const double k = s[r];
    const double* src = a + static_cast<size_t>(r) * cols;
    double* dst = out + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c] * k;
  }
}

void MatVecScalar(const double* mat, int64_t ld, const double* x, int rows,
                  int cols, double* out) {
  for (int r = 0; r < rows; ++r) {
    out[r] = RowDotScalar(mat + static_cast<size_t>(r) * ld, x, cols);
  }
}

void MatTVecAccumScalar(const double* mat, int64_t ld, const double* u,
                        int rows, int cols, double* out) {
  for (int c = 0; c < cols; ++c) out[c] = 0.0;
  for (int r = 0; r < rows; ++r) {
    const double* row = mat + static_cast<size_t>(r) * ld;
    const double ur = u[r];
    // fma keeps the r-ascending per-element accumulation order (the
    // contract lane4_ktu replays) while matching the AVX2 table bitwise.
    for (int c = 0; c < cols; ++c) out[c] = std::fma(ur, row[c], out[c]);
  }
}

void EwForwardScalar(int op, const double* x, double* out, int64_t n) {
  // The EwFwd formulas from simd.h, verbatim (and matching the autodiff
  // forward functions they replace on the dispatched path).
  switch (static_cast<EwFwd>(op)) {
    case EwFwd::kReciprocal:
      for (int64_t i = 0; i < n; ++i) out[i] = 1.0 / x[i];
      break;
    case EwFwd::kRelu:
      for (int64_t i = 0; i < n; ++i) out[i] = x[i] > 0.0 ? x[i] : 0.0;
      break;
    case EwFwd::kSqrt:
      for (int64_t i = 0; i < n; ++i) out[i] = std::sqrt(x[i]);
      break;
    case EwFwd::kSquare:
      for (int64_t i = 0; i < n; ++i) out[i] = x[i] * x[i];
      break;
    case EwFwd::kAbs:
      for (int64_t i = 0; i < n; ++i) out[i] = std::fabs(x[i]);
      break;
  }
}

constexpr KernelSet kScalarSet = {
    "scalar",        VecExpScalar,      RowDotScalar,
    GemmRow2Scalar,  GemmRow1Scalar,    AdamUpdateScalar,
    Lane4DotScalar,  Lane4MatVecScalar, Lane4KtuScalar,
    Lane4DivMaskedScalar, Lane4ViolationScalar, Lane4PlanScalar,
    VecAccumScalar,  VecAxpyScalar,     VecMulAccumScalar,
    VecAddScalarScalar, EwBackwardScalar,
    VecAddScalarKernel, VecSubScalar,   VecMulScalar,
    VecScaleScalar,  VecDivScalarScalar,
    AddRowBroadcastScalar, MulColBroadcastScalar,
    MatVecScalar,    MatTVecAccumScalar, EwForwardScalar,
};

bool CpuHasAvx2Fma() {
#if defined(CERL_HAVE_AVX2_KERNELS)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelSet* Resolve() {
  if (ForcedScalar()) return &kScalarSet;
#if defined(CERL_HAVE_AVX2_KERNELS)
  if (CpuHasAvx2Fma()) return Avx2KernelSet();
#endif
  return &kScalarSet;
}

// Resolution is cached in an atomic; concurrent first calls race benignly
// (Resolve is deterministic, so every racer stores the same pointer).
std::atomic<const KernelSet*> g_kernels{nullptr};

}  // namespace

const KernelSet& Kernels() {
  const KernelSet* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = Resolve();
    g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

const KernelSet& ScalarKernels() { return kScalarSet; }

bool Avx2Available() { return CpuHasAvx2Fma(); }

bool ForcedScalar() {
  const char* env = std::getenv("CERL_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void ForceScalarForTesting(bool force) {
  g_kernels.store(force ? &kScalarSet : Resolve(), std::memory_order_release);
}

}  // namespace cerl::linalg::simd
