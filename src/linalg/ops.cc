#include "linalg/ops.h"

#include <algorithm>
#include <cmath>

#include "linalg/gemm.h"
#include "linalg/simd.h"

namespace cerl::linalg {

void VecExp(const double* in, double* out, int n) {
  simd::Kernels().vec_exp(in, out, n);
}

Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b) {
  CERL_CHECK_EQ(a.cols(), b.cols());
  const int na = a.rows();
  const int nb = b.rows();
  Vector sq_a(na, 0.0), sq_b(nb, 0.0);
  for (int i = 0; i < na; ++i) {
    const double* row = a.row(i);
    double s = 0.0;
    for (int c = 0; c < a.cols(); ++c) s += row[c] * row[c];
    sq_a[i] = s;
  }
  for (int j = 0; j < nb; ++j) {
    const double* row = b.row(j);
    double s = 0.0;
    for (int c = 0; c < b.cols(); ++c) s += row[c] * row[c];
    sq_b[j] = s;
  }
  Matrix d(na, nb);
  Gemm(Trans::kNo, Trans::kYes, -2.0, a, b, 0.0, &d);
  for (int i = 0; i < na; ++i) {
    double* row = d.row(i);
    for (int j = 0; j < nb; ++j) {
      row[j] = std::max(0.0, row[j] + sq_a[i] + sq_b[j]);
    }
  }
  return d;
}

Vector ColumnMeans(const Matrix& m) {
  Vector mean(m.cols(), 0.0);
  if (m.rows() == 0) return mean;
  for (int r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    for (int c = 0; c < m.cols(); ++c) mean[c] += row[c];
  }
  for (double& v : mean) v /= m.rows();
  return mean;
}

Vector ColumnStds(const Matrix& m, double min_std) {
  Vector mean = ColumnMeans(m);
  Vector var(m.cols(), 0.0);
  if (m.rows() == 0) return Vector(m.cols(), min_std);
  for (int r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    for (int c = 0; c < m.cols(); ++c) {
      const double d = row[c] - mean[c];
      var[c] += d * d;
    }
  }
  Vector std(m.cols());
  for (int c = 0; c < m.cols(); ++c) {
    std[c] = std::max(min_std, std::sqrt(var[c] / m.rows()));
  }
  return std;
}

Matrix SampleCovariance(const Matrix& m) {
  const int n = m.rows();
  const int p = m.cols();
  CERL_CHECK_GT(n, 1);
  Vector mean = ColumnMeans(m);
  Matrix centered = m;
  for (int r = 0; r < n; ++r) {
    double* row = centered.row(r);
    for (int c = 0; c < p; ++c) row[c] -= mean[c];
  }
  Matrix cov(p, p);
  Gemm(Trans::kYes, Trans::kNo, 1.0 / (n - 1), centered, centered, 0.0, &cov);
  return cov;
}

Matrix SampleCorrelation(const Matrix& m) {
  Matrix cov = SampleCovariance(m);
  const int p = cov.rows();
  Vector inv_std(p);
  for (int i = 0; i < p; ++i) {
    inv_std[i] = cov(i, i) > 0.0 ? 1.0 / std::sqrt(cov(i, i)) : 0.0;
  }
  Matrix corr(p, p);
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      corr(i, j) = cov(i, j) * inv_std[i] * inv_std[j];
    }
  }
  return corr;
}

Matrix Standardize(const Matrix& m, const Vector& mean, const Vector& std) {
  CERL_CHECK_EQ(static_cast<int>(mean.size()), m.cols());
  CERL_CHECK_EQ(static_cast<int>(std.size()), m.cols());
  Matrix out = m;
  for (int r = 0; r < m.rows(); ++r) {
    double* row = out.row(r);
    for (int c = 0; c < m.cols(); ++c) {
      row[c] = (row[c] - mean[c]) / std[c];
    }
  }
  return out;
}

double Mean(const Vector& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const Vector& v) {
  if (v.empty()) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double PearsonCorrelation(const Vector& a, const Vector& b) {
  CERL_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace cerl::linalg
