#include "linalg/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "linalg/gemm.h"

namespace cerl::linalg {

void VecExp(const double* in, double* out, int n) {
  // exp(x) = 2^k * exp(r) with r = x - k*ln2 (|r| <= ln2/2). k is extracted
  // with the round-to-nearest shifter trick (adding 1.5 * 2^52 places the
  // integer in the low mantissa bits), exp(r) is a degree-11 Taylor
  // polynomial in Estrin form (max relative error ~9e-15 on the reduced
  // range; the even/odd split shortens the 11-FMA Horner dependency chain
  // to ~7 steps), and the 2^k scale is assembled directly in the exponent
  // field. Every step is add/mul/compare-select/integer bit work on
  // independent lanes, so gcc vectorizes the loop at -O3 even at the SSE2
  // baseline (no roundpd/cvttpd needed). The clamp ternaries only become
  // branch-free selects under -fno-trapping-math, set for this file in
  // src/CMakeLists.txt — without it the loop stays scalar (correct, ~1.7x
  // slower).
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  int64_t shift_bits;
  std::memcpy(&shift_bits, &kShift, sizeof(shift_bits));
  for (int i = 0; i < n; ++i) {
    double x = in[i];
    x = x > 708.0 ? 708.0 : x;
    x = x < -708.0 ? -708.0 : x;
    const double t = x * kLog2e + kShift;  // nearest integer, in-mantissa
    const double kd = t - kShift;
    const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
    const double r2 = r * r;
    const double r4 = r2 * r2;
    const double r6 = r4 * r2;
    const double lo = (1.0 + r) + r2 * (0.5 + r * (1.0 / 6.0)) +
                      r4 * (1.0 / 24.0 + r * (1.0 / 120.0));
    const double hi = (1.0 / 720.0 + r * (1.0 / 5040.0)) +
                      r2 * (1.0 / 40320.0 + r * (1.0 / 362880.0)) +
                      r4 * (1.0 / 3628800.0 + r * (1.0 / 39916800.0));
    const double p = lo + r6 * hi;
    int64_t t_bits;
    std::memcpy(&t_bits, &t, sizeof(t_bits));
    const int64_t k = t_bits - shift_bits;  // shared exponent => exact
    const int64_t scale_bits = (k + 1023) << 52;
    double scale;
    std::memcpy(&scale, &scale_bits, sizeof(scale));
    out[i] = p * scale;
  }
}

Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b) {
  CERL_CHECK_EQ(a.cols(), b.cols());
  const int na = a.rows();
  const int nb = b.rows();
  Vector sq_a(na, 0.0), sq_b(nb, 0.0);
  for (int i = 0; i < na; ++i) {
    const double* row = a.row(i);
    double s = 0.0;
    for (int c = 0; c < a.cols(); ++c) s += row[c] * row[c];
    sq_a[i] = s;
  }
  for (int j = 0; j < nb; ++j) {
    const double* row = b.row(j);
    double s = 0.0;
    for (int c = 0; c < b.cols(); ++c) s += row[c] * row[c];
    sq_b[j] = s;
  }
  Matrix d(na, nb);
  Gemm(Trans::kNo, Trans::kYes, -2.0, a, b, 0.0, &d);
  for (int i = 0; i < na; ++i) {
    double* row = d.row(i);
    for (int j = 0; j < nb; ++j) {
      row[j] = std::max(0.0, row[j] + sq_a[i] + sq_b[j]);
    }
  }
  return d;
}

Vector ColumnMeans(const Matrix& m) {
  Vector mean(m.cols(), 0.0);
  if (m.rows() == 0) return mean;
  for (int r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    for (int c = 0; c < m.cols(); ++c) mean[c] += row[c];
  }
  for (double& v : mean) v /= m.rows();
  return mean;
}

Vector ColumnStds(const Matrix& m, double min_std) {
  Vector mean = ColumnMeans(m);
  Vector var(m.cols(), 0.0);
  if (m.rows() == 0) return Vector(m.cols(), min_std);
  for (int r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    for (int c = 0; c < m.cols(); ++c) {
      const double d = row[c] - mean[c];
      var[c] += d * d;
    }
  }
  Vector std(m.cols());
  for (int c = 0; c < m.cols(); ++c) {
    std[c] = std::max(min_std, std::sqrt(var[c] / m.rows()));
  }
  return std;
}

Matrix SampleCovariance(const Matrix& m) {
  const int n = m.rows();
  const int p = m.cols();
  CERL_CHECK_GT(n, 1);
  Vector mean = ColumnMeans(m);
  Matrix centered = m;
  for (int r = 0; r < n; ++r) {
    double* row = centered.row(r);
    for (int c = 0; c < p; ++c) row[c] -= mean[c];
  }
  Matrix cov(p, p);
  Gemm(Trans::kYes, Trans::kNo, 1.0 / (n - 1), centered, centered, 0.0, &cov);
  return cov;
}

Matrix SampleCorrelation(const Matrix& m) {
  Matrix cov = SampleCovariance(m);
  const int p = cov.rows();
  Vector inv_std(p);
  for (int i = 0; i < p; ++i) {
    inv_std[i] = cov(i, i) > 0.0 ? 1.0 / std::sqrt(cov(i, i)) : 0.0;
  }
  Matrix corr(p, p);
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      corr(i, j) = cov(i, j) * inv_std[i] * inv_std[j];
    }
  }
  return corr;
}

Matrix Standardize(const Matrix& m, const Vector& mean, const Vector& std) {
  CERL_CHECK_EQ(static_cast<int>(mean.size()), m.cols());
  CERL_CHECK_EQ(static_cast<int>(std.size()), m.cols());
  Matrix out = m;
  for (int r = 0; r < m.rows(); ++r) {
    double* row = out.row(r);
    for (int c = 0; c < m.cols(); ++c) {
      row[c] = (row[c] - mean[c]) / std[c];
    }
  }
  return out;
}

double Mean(const Vector& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const Vector& v) {
  if (v.empty()) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double PearsonCorrelation(const Vector& a, const Vector& b) {
  CERL_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace cerl::linalg
