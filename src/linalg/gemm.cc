#include "linalg/gemm.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace cerl::linalg {
namespace {

// Panel sizes tuned for L1/L2 residency with doubles.
constexpr int kBlockM = 64;
constexpr int kBlockN = 128;
constexpr int kBlockK = 256;

// Packs op(A)'s [m0, m1) x [k0, k1) panel into row-major `buf`.
void PackA(Trans trans_a, const Matrix& a, int m0, int m1, int k0, int k1,
           double* buf) {
  const int kw = k1 - k0;
  if (trans_a == Trans::kNo) {
    for (int i = m0; i < m1; ++i) {
      const double* src = a.row(i) + k0;
      std::copy(src, src + kw, buf + static_cast<size_t>(i - m0) * kw);
    }
  } else {
    for (int i = m0; i < m1; ++i) {
      double* dst = buf + static_cast<size_t>(i - m0) * kw;
      for (int k = k0; k < k1; ++k) dst[k - k0] = a(k, i);
    }
  }
}

// Packs op(B)'s [k0, k1) x [n0, n1) panel into row-major `buf`.
void PackB(Trans trans_b, const Matrix& b, int k0, int k1, int n0, int n1,
           double* buf) {
  const int nw = n1 - n0;
  if (trans_b == Trans::kNo) {
    for (int k = k0; k < k1; ++k) {
      const double* src = b.row(k) + n0;
      std::copy(src, src + nw, buf + static_cast<size_t>(k - k0) * nw);
    }
  } else {
    for (int k = k0; k < k1; ++k) {
      double* dst = buf + static_cast<size_t>(k - k0) * nw;
      for (int n = n0; n < n1; ++n) dst[n - n0] = b(n, k);
    }
  }
}

// C[m0:m1, :] += alpha * op(A)[m0:m1, :] * op(B); beta already applied.
void GemmRows(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
              const Matrix& b, Matrix* c, int m_begin, int m_end, int n_dim,
              int k_dim) {
  // The pack panels are reused across calls (thread-local, so concurrent
  // row-panel workers keep disjoint buffers). Allocating-and-zeroing them
  // per call cost more than the arithmetic for the skinny GEMMs that
  // dominate training steps.
  static thread_local std::vector<double> pack_a(
      static_cast<size_t>(kBlockM) * kBlockK);
  static thread_local std::vector<double> pack_b(
      static_cast<size_t>(kBlockK) * kBlockN);
  for (int k0 = 0; k0 < k_dim; k0 += kBlockK) {
    const int k1 = std::min(k_dim, k0 + kBlockK);
    const int kw = k1 - k0;
    for (int n0 = 0; n0 < n_dim; n0 += kBlockN) {
      const int n1 = std::min(n_dim, n0 + kBlockN);
      const int nw = n1 - n0;
      // When an operand is untransposed and the panel spans its full row
      // width, "packing" would be a verbatim copy — read it in place
      // instead. The skinny GEMMs of a training step (k, n well under one
      // block) all take this path, where the copy cost rivals the math.
      const bool direct_b = trans_b == Trans::kNo && nw == b.cols();
      const double* bpanel;
      if (direct_b) {
        bpanel = b.row(k0);
      } else {
        PackB(trans_b, b, k0, k1, n0, n1, pack_b.data());
        bpanel = pack_b.data();
      }
      const bool direct_a = trans_a == Trans::kNo && kw == a.cols();
      for (int m0 = m_begin; m0 < m_end; m0 += kBlockM) {
        const int m1 = std::min(m_end, m0 + kBlockM);
        const double* apanel;
        if (direct_a) {
          apanel = a.row(m0);
        } else {
          PackA(trans_a, a, m0, m1, k0, k1, pack_a.data());
          apanel = pack_a.data();
        }
        // Register-blocked microkernel: two C rows share each pack_b load
        // and k is unrolled by 4, so the inner loop performs 16 flops per
        // 8 memory operations (vs 8 per 6 for a single-row kernel) — the
        // kernel was load-bound, not flop-bound. Everything stays
        // contiguous in pack_b and crow, so it vectorizes.
        int i = m0;
        for (; i + 2 <= m1; i += 2) {
          const double* arow0 =
              apanel + static_cast<size_t>(i - m0) * kw;
          const double* arow1 = arow0 + kw;
          double* crow0 = c->row(i) + n0;
          double* crow1 = c->row(i + 1) + n0;
          int k = 0;
          for (; k + 4 <= kw; k += 4) {
            const double a00 = alpha * arow0[k];
            const double a01 = alpha * arow0[k + 1];
            const double a02 = alpha * arow0[k + 2];
            const double a03 = alpha * arow0[k + 3];
            const double a10 = alpha * arow1[k];
            const double a11 = alpha * arow1[k + 1];
            const double a12 = alpha * arow1[k + 2];
            const double a13 = alpha * arow1[k + 3];
            const double* b0 = bpanel + static_cast<size_t>(k) * nw;
            const double* b1 = b0 + nw;
            const double* b2 = b1 + nw;
            const double* b3 = b2 + nw;
            for (int n = 0; n < nw; ++n) {
              crow0[n] += a00 * b0[n] + a01 * b1[n] + a02 * b2[n] + a03 * b3[n];
              crow1[n] += a10 * b0[n] + a11 * b1[n] + a12 * b2[n] + a13 * b3[n];
            }
          }
          for (; k < kw; ++k) {
            const double a0k = alpha * arow0[k];
            const double a1k = alpha * arow1[k];
            const double* brow = bpanel + static_cast<size_t>(k) * nw;
            for (int n = 0; n < nw; ++n) {
              crow0[n] += a0k * brow[n];
              crow1[n] += a1k * brow[n];
            }
          }
        }
        for (; i < m1; ++i) {
          const double* arow = apanel + static_cast<size_t>(i - m0) * kw;
          double* crow = c->row(i) + n0;
          int k = 0;
          for (; k + 4 <= kw; k += 4) {
            const double a0 = alpha * arow[k];
            const double a1 = alpha * arow[k + 1];
            const double a2 = alpha * arow[k + 2];
            const double a3 = alpha * arow[k + 3];
            const double* b0 = bpanel + static_cast<size_t>(k) * nw;
            const double* b1 = b0 + nw;
            const double* b2 = b1 + nw;
            const double* b3 = b2 + nw;
            for (int n = 0; n < nw; ++n) {
              crow[n] += a0 * b0[n] + a1 * b1[n] + a2 * b2[n] + a3 * b3[n];
            }
          }
          for (; k < kw; ++k) {
            const double ak = alpha * arow[k];
            const double* brow = bpanel + static_cast<size_t>(k) * nw;
            for (int n = 0; n < nw; ++n) crow[n] += ak * brow[n];
          }
        }
      }
    }
  }
}

}  // namespace

void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c) {
  const int m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int k = trans_a == Trans::kNo ? a.cols() : a.rows();
  const int kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const int n = trans_b == Trans::kNo ? b.cols() : b.rows();
  CERL_CHECK_EQ(k, kb);
  CERL_CHECK_EQ(c->rows(), m);
  CERL_CHECK_EQ(c->cols(), n);

  if (beta == 0.0) {
    c->Fill(0.0);
  } else if (beta != 1.0) {
    c->Scale(beta);
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  // Parallelize across row panels; each worker owns a disjoint slice of C.
  const int64_t flops = static_cast<int64_t>(m) * n * k;
  if (flops < 1 << 18) {
    GemmRows(trans_a, trans_b, alpha, a, b, c, 0, m, n, k);
    return;
  }
  ParallelFor(
      0, m,
      [&](int64_t lo, int64_t hi) {
        GemmRows(trans_a, trans_b, alpha, a, b, c, static_cast<int>(lo),
                 static_cast<int>(hi), n, k);
      },
      /*grain=*/kBlockM);
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  return MatMulT(Trans::kNo, Trans::kNo, a, b);
}

Matrix MatMulT(Trans trans_a, Trans trans_b, const Matrix& a,
               const Matrix& b) {
  const int m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int n = trans_b == Trans::kNo ? b.cols() : b.rows();
  Matrix c(m, n);
  Gemm(trans_a, trans_b, 1.0, a, b, 0.0, &c);
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  Vector y;
  MatVecInto(a, x, &y);
  return y;
}

void MatVecInto(const Matrix& a, const Vector& x, Vector* y, int64_t grain) {
  CERL_CHECK_EQ(a.cols(), static_cast<int>(x.size()));
  y->resize(a.rows());
  const int cols = a.cols();
  double* yd = y->data();
  const double* xd = x.data();
  // Row panels are independent, so the parallel split is deterministic; the
  // four running sums per row expose ILP the single-accumulator loop lacked.
  if (grain < 0) grain = std::max<int64_t>(8, (1 << 16) / (cols + 1));
  ParallelFor(
      0, a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const double* row = a.row(static_cast<int>(r));
          double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
          int c = 0;
          for (; c + 4 <= cols; c += 4) {
            s0 += row[c] * xd[c];
            s1 += row[c + 1] * xd[c + 1];
            s2 += row[c + 2] * xd[c + 2];
            s3 += row[c + 3] * xd[c + 3];
          }
          for (; c < cols; ++c) s0 += row[c] * xd[c];
          yd[r] = (s0 + s1) + (s2 + s3);
        }
      },
      grain);
}

}  // namespace cerl::linalg
