#include "linalg/gemm.h"

#include <algorithm>

#include "linalg/simd.h"
#include "util/thread_pool.h"

namespace cerl::linalg {
namespace {

// Panel sizes tuned for L1/L2 residency with doubles.
constexpr int kBlockM = 64;
constexpr int kBlockN = 128;
constexpr int kBlockK = 256;

// Packs op(A)'s [m0, m1) x [k0, k1) panel into row-major `buf`.
void PackA(Trans trans_a, const Matrix& a, int m0, int m1, int k0, int k1,
           double* buf) {
  const int kw = k1 - k0;
  if (trans_a == Trans::kNo) {
    for (int i = m0; i < m1; ++i) {
      const double* src = a.row(i) + k0;
      std::copy(src, src + kw, buf + static_cast<size_t>(i - m0) * kw);
    }
  } else {
    for (int i = m0; i < m1; ++i) {
      double* dst = buf + static_cast<size_t>(i - m0) * kw;
      for (int k = k0; k < k1; ++k) dst[k - k0] = a(k, i);
    }
  }
}

// Packs op(B)'s [k0, k1) x [n0, n1) panel into row-major `buf`.
void PackB(Trans trans_b, const Matrix& b, int k0, int k1, int n0, int n1,
           double* buf) {
  const int nw = n1 - n0;
  if (trans_b == Trans::kNo) {
    for (int k = k0; k < k1; ++k) {
      const double* src = b.row(k) + n0;
      std::copy(src, src + nw, buf + static_cast<size_t>(k - k0) * nw);
    }
  } else {
    for (int k = k0; k < k1; ++k) {
      double* dst = buf + static_cast<size_t>(k - k0) * nw;
      for (int n = n0; n < n1; ++n) dst[n - n0] = b(n, k);
    }
  }
}

// C[m0:m1, :] += alpha * op(A)[m0:m1, :] * op(B); beta already applied.
void GemmRows(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
              const Matrix& b, Matrix* c, int m_begin, int m_end, int n_dim,
              int k_dim) {
  // The pack panels are reused across calls (thread-local, so concurrent
  // row-panel workers keep disjoint buffers). Allocating-and-zeroing them
  // per call cost more than the arithmetic for the skinny GEMMs that
  // dominate training steps.
  static thread_local std::vector<double> pack_a(
      static_cast<size_t>(kBlockM) * kBlockK);
  static thread_local std::vector<double> pack_b(
      static_cast<size_t>(kBlockK) * kBlockN);
  for (int k0 = 0; k0 < k_dim; k0 += kBlockK) {
    const int k1 = std::min(k_dim, k0 + kBlockK);
    const int kw = k1 - k0;
    for (int n0 = 0; n0 < n_dim; n0 += kBlockN) {
      const int n1 = std::min(n_dim, n0 + kBlockN);
      const int nw = n1 - n0;
      // When an operand is untransposed and the panel spans its full row
      // width, "packing" would be a verbatim copy — read it in place
      // instead. The skinny GEMMs of a training step (k, n well under one
      // block) all take this path, where the copy cost rivals the math.
      const bool direct_b = trans_b == Trans::kNo && nw == b.cols();
      const double* bpanel;
      if (direct_b) {
        bpanel = b.row(k0);
      } else {
        PackB(trans_b, b, k0, k1, n0, n1, pack_b.data());
        bpanel = pack_b.data();
      }
      const bool direct_a = trans_a == Trans::kNo && kw == a.cols();
      for (int m0 = m_begin; m0 < m_end; m0 += kBlockM) {
        const int m1 = std::min(m_end, m0 + kBlockM);
        const double* apanel;
        if (direct_a) {
          apanel = a.row(m0);
        } else {
          PackA(trans_a, a, m0, m1, k0, k1, pack_a.data());
          apanel = pack_a.data();
        }
        // Register-blocked microkernel (dispatched, see linalg/simd.h):
        // two C rows share each pack_b load and k is unrolled by 4, so the
        // inner loop performs 16 flops per 8 memory operations (vs 8 per 6
        // for a single-row kernel) — the kernel was load-bound, not
        // flop-bound. Everything stays contiguous in pack_b and crow.
        const auto& ks = simd::Kernels();
        int i = m0;
        for (; i + 2 <= m1; i += 2) {
          const double* arow0 =
              apanel + static_cast<size_t>(i - m0) * kw;
          ks.gemm_row2(alpha, arow0, arow0 + kw, bpanel, kw, nw,
                       c->row(i) + n0, c->row(i + 1) + n0);
        }
        for (; i < m1; ++i) {
          ks.gemm_row1(alpha, apanel + static_cast<size_t>(i - m0) * kw,
                       bpanel, kw, nw, c->row(i) + n0);
        }
      }
    }
  }
}

}  // namespace

void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c) {
  const int m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int k = trans_a == Trans::kNo ? a.cols() : a.rows();
  const int kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const int n = trans_b == Trans::kNo ? b.cols() : b.rows();
  CERL_CHECK_EQ(k, kb);
  CERL_CHECK_EQ(c->rows(), m);
  CERL_CHECK_EQ(c->cols(), n);

  if (beta == 0.0) {
    c->Fill(0.0);
  } else if (beta != 1.0) {
    c->Scale(beta);
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  // Parallelize across row panels; each worker owns a disjoint slice of C.
  const int64_t flops = static_cast<int64_t>(m) * n * k;
  if (flops < 1 << 18) {
    GemmRows(trans_a, trans_b, alpha, a, b, c, 0, m, n, k);
    return;
  }
  ParallelFor(
      0, m,
      [&](int64_t lo, int64_t hi) {
        GemmRows(trans_a, trans_b, alpha, a, b, c, static_cast<int>(lo),
                 static_cast<int>(hi), n, k);
      },
      /*grain=*/kBlockM);
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  return MatMulT(Trans::kNo, Trans::kNo, a, b);
}

Matrix MatMulT(Trans trans_a, Trans trans_b, const Matrix& a,
               const Matrix& b) {
  const int m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const int n = trans_b == Trans::kNo ? b.cols() : b.rows();
  Matrix c(m, n);
  Gemm(trans_a, trans_b, 1.0, a, b, 0.0, &c);
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  Vector y;
  MatVecInto(a, x, &y);
  return y;
}

void MatVecInto(const Matrix& a, const Vector& x, Vector* y, int64_t grain) {
  CERL_CHECK_EQ(a.cols(), static_cast<int>(x.size()));
  y->resize(a.rows());
  const int cols = a.cols();
  double* yd = y->data();
  const double* xd = x.data();
  // Row panels are independent, so the parallel split is deterministic; the
  // row_dot kernel's four fixed-order accumulators make the result
  // identical for any split.
  if (grain < 0) grain = std::max<int64_t>(8, (1 << 16) / (cols + 1));
  const auto& ks = simd::Kernels();
  ParallelFor(
      0, a.rows(),
      [&](int64_t lo, int64_t hi) {
        ks.mat_vec(a.row(static_cast<int>(lo)), cols, xd,
                   static_cast<int>(hi - lo), cols, yd + lo);
      },
      grain);
}

}  // namespace cerl::linalg
