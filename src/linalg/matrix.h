// Dense row-major matrix and vector of doubles. This is the single numeric
// container shared by the autodiff engine, the data generators, and the
// statistics code. Kept deliberately simple: contiguous storage, value
// semantics, checked element access in debug builds.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace cerl::linalg {

using Vector = std::vector<double>;

/// Row-major dense matrix of double.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix initialized to `fill`.
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    CERL_CHECK_GE(rows, 0);
    CERL_CHECK_GE(cols, 0);
  }

  /// Builds from nested initializer list; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a rows x cols matrix adopting `data` (size must match).
  static Matrix FromData(int rows, int cols, std::vector<double> data);

  /// n x n identity.
  static Matrix Identity(int n);

  /// 1 x n row matrix from a vector.
  static Matrix RowVector(const Vector& v);

  /// n x 1 column matrix from a vector.
  static Matrix ColVector(const Vector& v);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double& operator()(int r, int c) {
    CERL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    CERL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Pointer to the start of row r.
  double* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Copies row r into a Vector.
  Vector RowCopy(int r) const;

  /// Copies column c into a Vector.
  Vector ColCopy(int c) const;

  /// Sets row r from a vector of length cols().
  void SetRow(int r, const Vector& v);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Returns the sub-matrix of the given rows (by index, in order).
  Matrix GatherRows(const std::vector<int>& indices) const;
  Matrix GatherRows(const int* indices, int n) const;

  /// Gathers rows into `out`, reusing its storage when the shape already
  /// matches (the zero-allocation path for minibatch assembly). Row copies
  /// are parallelized across the global thread pool for large gathers.
  void GatherRowsInto(const int* indices, int n, Matrix* out) const;

  /// Reshapes to rows x cols in place. The heap buffer is reused whenever
  /// the new element count fits the capacity already acquired
  /// (std::vector::resize allocates only on growth), which is what the
  /// arena-style consumers (SinkhornWorkspace, loss-builder scratch) rely on
  /// for zero-churn steady states. Element contents are unspecified after a
  /// shape-changing resize; overwrite fully before reading.
  void Resize(int rows, int cols) {
    CERL_CHECK_GE(rows, 0);
    CERL_CHECK_GE(cols, 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * cols);
  }

  /// Elementwise in-place operations.
  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  void Scale(double s);
  void Add(const Matrix& other);
  void Sub(const Matrix& other);

  /// this += alpha * x (elementwise; shapes must match).
  void Axpy(double alpha, const Matrix& x);

  /// Copies `other`'s elements into this matrix without reallocating;
  /// shapes must already match.
  void CopyFrom(const Matrix& other);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

  /// Human-readable preview (small matrices only; truncated otherwise).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

}  // namespace cerl::linalg
