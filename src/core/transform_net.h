// Feature representation transformation phi_{d-1 -> d} (§III-A3, Eq. 7):
// a small network mapping the previous representation space into the new
// one, trained jointly with the continual objective via
//   L_FT = 1 - cos(phi(g_{w_{d-1}}(x)), g_{w_d}(x)),  x in D_d.
// Once trained, it migrates the memory bank: R~_{d-1} = phi(R_{d-1}).
#pragma once

#include <memory>
#include <vector>

#include "nn/mlp.h"
#include "util/rng.h"

namespace cerl::core {

using autodiff::Parameter;
using autodiff::Tape;
using autodiff::Var;

/// phi network: rep_dim -> rep_dim with bounded (tanh) outputs, matching the
/// bounded cosine-normalized representation space.
class TransformNet {
 public:
  /// hidden = sizes of hidden layers; empty means a single affine+tanh map.
  TransformNet(Rng* rng, int rep_dim, std::vector<int> hidden = {});

  Var Forward(Tape* tape, Var rep);

  /// No-grad application to a matrix of representations.
  linalg::Matrix Apply(const linalg::Matrix& reps);

  std::vector<Parameter*> Parameters();

  int rep_dim() const { return rep_dim_; }

 private:
  int rep_dim_;
  std::unique_ptr<nn::Mlp> net_;
};

}  // namespace cerl::core
