// CERL — Continual Causal Effect Representation Learning (the paper's
// contribution, Algorithm 1).
//
// Stage 1 (baseline, Eq. 5): train a CFR model on the first domain, then
// store herding-selected representations in the memory bank.
//
// Stage d >= 2 (continual, Eq. 9): train a new model g_{w_d}, h_{theta_d}
// and the transformation phi_{d-1->d} jointly on
//   L = L_G + alpha * Wass(P, Q) + lambda * ElasticNet(w_d)
//       + beta * L_FD + delta * L_FT
// where L_G (Eq. 8) fits factual outcomes on new data AND transformed
// memory representations, the IPM balances treated/control over the global
// representation space (memory ∪ new), L_FD (Eq. 6) distills the old
// model's representations of the new data, and L_FT (Eq. 7) aligns
// phi(g_{w_{d-1}}(x)) with g_{w_d}(x). Afterwards the memory is migrated:
//   M_d = Herding({R_d, Y_d, T_d} ∪ phi(M_{d-1})).
// Raw covariates of past domains are never kept (accessibility criterion).
//
// Algorithm 1 is exposed as an explicit stage pipeline —
//   ValidateDomain -> BeginStage -> TrainStage -> MigrateStage
// — with all cross-stage state carried in a StageContext rather than hidden
// in the trainer, so the stream engine (src/stream/) can schedule stages of
// many independent trainers on shared workers and overlap stage work across
// streams. ObserveDomain composes the three member stages in order and is
// bit-identical to the historical monolithic loop.
#pragma once

#include <memory>
#include <vector>

#include "causal/cfr.h"
#include "core/memory_bank.h"
#include "core/transform_net.h"

namespace cerl::core {

/// Full CERL configuration.
struct CerlConfig {
  causal::NetConfig net;
  causal::TrainConfig train;

  /// Distillation weight. The paper fixes beta = 1 (following iCaRL /
  /// feature-adaptation practice); with this implementation's loss
  /// normalization a stronger default keeps the same balance between the
  /// factual term and the distillation term (calibrated on held-out
  /// streams; see EXPERIMENTS.md).
  double beta = 3.0;
  double delta = 1.0;    ///< transformation weight
  int memory_capacity = 500;  ///< M

  /// Ablation switches (Table II).
  bool use_transform = true;  ///< false = "w/o FRT": no memory replay at all
  bool use_herding = true;    ///< false = random memory subsampling
  // "w/o cosine" is net.cosine_normalized_rep = false.

  /// Warm-start g_{w_d} from g_{w_{d-1}} (speeds convergence; the losses,
  /// not the init, carry the old knowledge).
  bool init_from_previous = true;

  /// Learning-rate multiplier for continual stages (d >= 2). Warm-started
  /// stages need smaller steps than the from-scratch baseline stage:
  /// large steps let the new-domain factual term overwrite regions of the
  /// representation the distillation/replay losses cannot observe.
  double continual_lr_scale = 0.3;

  /// Hidden sizes of phi (empty = single affine+tanh layer).
  std::vector<int> transform_hidden = {};
};

/// Continual trainer over an incrementally available domain stream.
class CerlTrainer {
 public:
  CerlTrainer(const CerlConfig& config, int input_dim);

  // --- Stage pipeline (Algorithm 1, stream-engine schedulable) ----------

  /// Pure pre-flight validation of an incoming domain: shape consistency
  /// against `input_dim`, aligned unit counts, finite covariates/outcomes.
  /// Touches no trainer state, so the stream engine scores it on the shared
  /// pool while earlier stages are still training.
  static Status ValidateDomain(const data::DataSplit& split, int input_dim);

  /// Cross-stage context: every piece of per-stage state (standardized
  /// inputs, distillation targets, phi, the joint parameter set, the stage
  /// RNG, validation clones) lives here explicitly — the trainer itself
  /// keeps only the durable continual state (current/old model, memory,
  /// stage counter).
  struct StageContext;

  /// Ingest/standardize: advances the stage counter, builds (and
  /// warm-starts) the stage model, standardizes the domain with the stage's
  /// scalers, freezes the old model's representations of the new data, and
  /// constructs phi. Must be followed by TrainStage then MigrateStage.
  std::unique_ptr<StageContext> BeginStage(const data::DataSplit& split);

  /// Train + validate: optimizes the stage objective with the shared
  /// engine loop (asynchronous validation when
  /// config.train.async_validation).
  causal::TrainStats TrainStage(StageContext* ctx);

  /// Herd/migrate: M_d = Herding({R_d, Y_d, T_d} ∪ phi(M_{d-1})).
  void MigrateStage(StageContext* ctx);

  /// Consumes the next domain (Algorithm 1 body): BeginStage + TrainStage +
  /// MigrateStage. Returns training stats.
  causal::TrainStats ObserveDomain(const data::DataSplit& split);

  /// Estimated ITE with the current model h_{theta_d}(g_{w_d}(x)).
  linalg::Vector PredictIte(const linalg::Matrix& x_raw);

  /// PEHE / ATE error of the current model on a test set.
  causal::CausalMetrics Evaluate(const data::CausalDataset& test);

  const MemoryBank& memory() const { return memory_; }
  int stages_seen() const { return stages_seen_; }
  causal::RepOutcomeNet* current_net();
  const CerlConfig& config() const { return config_; }
  int input_dim() const { return input_dim_; }

  /// Persists the continual state — current model (weights + scalers), the
  /// memory bank, the stage counter, and the trainer RNG stream — so a
  /// resumed trainer continues BIT-IDENTICALLY to the uninterrupted run, in
  /// a new process, without any raw data (checkpoint.cc). Requires >= 1
  /// stage. The write is crash-safe: temp file + fsync + atomic rename.
  Status SaveCheckpoint(const std::string& path);

  /// Restores a checkpoint into a freshly constructed trainer (same config
  /// and input dimension as the saver; enforced via parameter shapes).
  /// Must be called before any ObserveDomain.
  Status LoadCheckpoint(const std::string& path);

  /// In-memory checkpoint entry points, shared by SaveCheckpoint /
  /// LoadCheckpoint and by the stream engine's snapshot container (which
  /// embeds one serialized trainer per stream). The payload is the full
  /// CERLCKP1 format including the trailing checksum.
  Status SerializeCheckpoint(std::string* out);

  /// All-or-nothing restore: the payload is fully parsed and validated
  /// (checksum, dimensions, parameter shapes) before ANY trainer state is
  /// touched, so a failed load leaves the trainer exactly as it was.
  Status DeserializeCheckpoint(std::string_view payload);

  /// Returns the trainer to its freshly-constructed state (no model, empty
  /// memory, stage counter 0, re-seeded RNG). DeserializeCheckpoint requires
  /// a fresh trainer, so Reset + Deserialize is the rollback idiom the
  /// stream engine uses to restore a stream's last-good state in place
  /// (CerlTrainer is intentionally not movable: MemoryBank carries a mutex).
  void Reset();

  /// Post-stage numerical health guard: every current-model parameter and
  /// every memory-bank representation must be finite. A trainer that fails
  /// this check has been poisoned by a numerical excursion and must be
  /// rolled back (Reset + DeserializeCheckpoint) before further stages.
  Status CheckNumericalHealth();

 private:
  causal::TrainStats TrainContinualStage(StageContext* ctx);
  void SeedMemoryFromCurrent(const data::CausalDataset& train);
  double StageValidLoss(causal::RepOutcomeNet* net, TransformNet* phi,
                        const StageContext& ctx);

  CerlConfig config_;
  int input_dim_;
  Rng rng_;
  std::unique_ptr<causal::CfrModel> model_;      ///< current stage model
  std::unique_ptr<causal::CfrModel> old_model_;  ///< g_{w_{d-1}} (frozen)
  MemoryBank memory_;
  int stages_seen_ = 0;
};

/// Everything one stage carries between BeginStage, TrainStage and
/// MigrateStage. Movable-by-pointer (the stream engine hands it between
/// pipeline tasks); not reusable across stages.
struct CerlTrainer::StageContext {
  const data::DataSplit* split = nullptr;
  int stage = 0;          ///< 1-based stage index (== stages_seen at begin)
  bool baseline = false;  ///< stage 1 trains the plain CFR objective
  causal::TrainConfig stage_train;

  // Standardized stage inputs (continual stages; the baseline stage fits
  // scalers inside CfrModel::Train).
  linalg::Matrix x_train, x_valid;
  linalg::Vector y_train, y_valid;
  /// Old-model representations of the new data, computed once (frozen
  /// distillation target, Eq. 6).
  linalg::Matrix old_reps_train;

  std::unique_ptr<TransformNet> phi;  ///< phi_{d-1->d} (continual stages)
  /// Joint trainable set (net ∪ phi), in snapshot order.
  std::vector<autodiff::Parameter*> params;
  Rng loop_rng{0};  ///< shuffles + memory-replay sampling for this stage
  bool use_memory = false;
  int mem_batch = 0;

  // Async-validation clones: parameter snapshots are written into these and
  // scored off-thread while the live net/phi keep training.
  std::unique_ptr<causal::RepOutcomeNet> valid_net;
  std::unique_ptr<TransformNet> valid_phi;

  causal::TrainStats stats;  ///< filled by TrainStage
};

}  // namespace cerl::core
