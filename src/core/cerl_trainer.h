// CERL — Continual Causal Effect Representation Learning (the paper's
// contribution, Algorithm 1).
//
// Stage 1 (baseline, Eq. 5): train a CFR model on the first domain, then
// store herding-selected representations in the memory bank.
//
// Stage d >= 2 (continual, Eq. 9): train a new model g_{w_d}, h_{theta_d}
// and the transformation phi_{d-1->d} jointly on
//   L = L_G + alpha * Wass(P, Q) + lambda * ElasticNet(w_d)
//       + beta * L_FD + delta * L_FT
// where L_G (Eq. 8) fits factual outcomes on new data AND transformed
// memory representations, the IPM balances treated/control over the global
// representation space (memory ∪ new), L_FD (Eq. 6) distills the old
// model's representations of the new data, and L_FT (Eq. 7) aligns
// phi(g_{w_{d-1}}(x)) with g_{w_d}(x). Afterwards the memory is migrated:
//   M_d = Herding({R_d, Y_d, T_d} ∪ phi(M_{d-1})).
// Raw covariates of past domains are never kept (accessibility criterion).
#pragma once

#include <memory>
#include <vector>

#include "causal/cfr.h"
#include "core/memory_bank.h"
#include "core/transform_net.h"

namespace cerl::core {

/// Full CERL configuration.
struct CerlConfig {
  causal::NetConfig net;
  causal::TrainConfig train;

  /// Distillation weight. The paper fixes beta = 1 (following iCaRL /
  /// feature-adaptation practice); with this implementation's loss
  /// normalization a stronger default keeps the same balance between the
  /// factual term and the distillation term (calibrated on held-out
  /// streams; see EXPERIMENTS.md).
  double beta = 3.0;
  double delta = 1.0;    ///< transformation weight
  int memory_capacity = 500;  ///< M

  /// Ablation switches (Table II).
  bool use_transform = true;  ///< false = "w/o FRT": no memory replay at all
  bool use_herding = true;    ///< false = random memory subsampling
  // "w/o cosine" is net.cosine_normalized_rep = false.

  /// Warm-start g_{w_d} from g_{w_{d-1}} (speeds convergence; the losses,
  /// not the init, carry the old knowledge).
  bool init_from_previous = true;

  /// Learning-rate multiplier for continual stages (d >= 2). Warm-started
  /// stages need smaller steps than the from-scratch baseline stage:
  /// large steps let the new-domain factual term overwrite regions of the
  /// representation the distillation/replay losses cannot observe.
  double continual_lr_scale = 0.3;

  /// Hidden sizes of phi (empty = single affine+tanh layer).
  std::vector<int> transform_hidden = {};
};

/// Continual trainer over an incrementally available domain stream.
class CerlTrainer {
 public:
  CerlTrainer(const CerlConfig& config, int input_dim);

  /// Consumes the next domain (Algorithm 1 body). Returns training stats.
  causal::TrainStats ObserveDomain(const data::DataSplit& split);

  /// Estimated ITE with the current model h_{theta_d}(g_{w_d}(x)).
  linalg::Vector PredictIte(const linalg::Matrix& x_raw);

  /// PEHE / ATE error of the current model on a test set.
  causal::CausalMetrics Evaluate(const data::CausalDataset& test);

  const MemoryBank& memory() const { return memory_; }
  int stages_seen() const { return stages_seen_; }
  causal::RepOutcomeNet* current_net();

  /// Persists the continual state — current model (weights + scalers), the
  /// memory bank, and the stage counter — so estimation can resume in a new
  /// process without any raw data (checkpoint.cc). Requires >= 1 stage.
  Status SaveCheckpoint(const std::string& path);

  /// Restores a checkpoint into a freshly constructed trainer (same config
  /// and input dimension as the saver; enforced via parameter shapes).
  /// Must be called before any ObserveDomain.
  Status LoadCheckpoint(const std::string& path);

 private:
  causal::TrainStats TrainBaseline(const data::DataSplit& split);
  causal::TrainStats TrainContinual(const data::DataSplit& split);
  void SeedMemoryFromCurrent(const data::CausalDataset& train);

  CerlConfig config_;
  int input_dim_;
  Rng rng_;
  std::unique_ptr<causal::CfrModel> model_;      ///< current stage model
  std::unique_ptr<causal::CfrModel> old_model_;  ///< g_{w_{d-1}} (frozen)
  MemoryBank memory_;
  int stages_seen_ = 0;
};

}  // namespace cerl::core
