// CERL checkpointing: persists exactly the state the method itself keeps
// between stages — the current model h_{theta_d}(g_{w_d}) with its scalers,
// the representation memory M_d, the stage counter, and the trainer RNG
// stream. By construction no raw covariates of past domains are written (the
// accessibility criterion), so a checkpoint is as privacy-compatible as the
// in-memory state — and it is the ENTIRE durable state: a restored trainer
// continues bit-identically to the uninterrupted run.
//
// Format CERLCKP1 (frozen; golden fixtures under tests/testdata/):
//   magic "CERLCKP1",
//   u32 stage_count, u32 input_dim,
//   rng (u64 words[4], u8 has_cached_normal, f64 cached_normal),
//   x-scaler (u32 dim, mean[], u32 dim, std[]; dim must equal input_dim),
//   y-scaler (f64 mean, f64 std, u8 fitted),
//   parameter block (nn/serialize CERLPAR1 framing),
//   memory (u32 rows, u32 cols, reps[], u32 rows, y[], t[] as u8),
//   u64 FNV-1a checksum of all preceding bytes.
//
// Reads are bounds-checked (every length field is validated against the
// bytes actually present before any allocation) and staged: the trainer is
// mutated only after the whole payload parsed and validated, so corrupt or
// mismatched checkpoints return a typed Status and leave the trainer
// untouched.
//
// (The pre-PR5 development layout reused this magic without the RNG block
// or checksum; it was never a published format — such files are rejected by
// the checksum check, which is where the format history starts.)
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>

#include "core/cerl_trainer.h"
#include "nn/serialize.h"
#include "util/binary_io.h"

namespace cerl::core {
namespace {

constexpr char kMagic[8] = {'C', 'E', 'R', 'L', 'C', 'K', 'P', '1'};

// Decode-time cap on memory rows: generous (the bank is bounded by
// memory_capacity, typically hundreds) yet small enough that a corrupted
// count can neither overflow the byte math nor the int casts.
constexpr uint32_t kMaxMemoryRows = 1u << 27;

}  // namespace

Status CerlTrainer::SerializeCheckpoint(std::string* out) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition(
        "nothing to checkpoint: no domain observed yet");
  }
  out->clear();
  out->append(kMagic, sizeof(kMagic));
  WritePod(out, static_cast<uint32_t>(stages_seen_));
  WritePod(out, static_cast<uint32_t>(input_dim_));

  // Trainer RNG: consumed by the w/o-herding memory subsampling; persisting
  // it is what makes "save -> load -> continue" bitwise-equal to the
  // uninterrupted run under every ablation, not just the default config.
  const Rng::State rng_state = rng_.SaveState();
  for (uint64_t word : rng_state.words) WritePod(out, word);
  WritePod(out, static_cast<uint8_t>(rng_state.has_cached_normal ? 1 : 0));
  WritePod(out, rng_state.cached_normal);

  causal::RepOutcomeNet& net = model_->net();
  WriteF64Vector(out, net.x_scaler().mean());
  WriteF64Vector(out, net.x_scaler().std());
  WritePod(out, net.y_scaler().mean());
  WritePod(out, net.y_scaler().scale());
  WritePod(out, static_cast<uint8_t>(net.y_scaler().fitted() ? 1 : 0));

  {
    std::ostringstream params;
    CERL_RETURN_IF_ERROR(
        nn::SaveParametersToStream(params, net.Parameters()));
    out->append(params.str());
  }

  const uint32_t mem_rows = static_cast<uint32_t>(memory_.size());
  const uint32_t mem_cols =
      memory_.empty() ? 0 : static_cast<uint32_t>(memory_.rep_dim());
  WritePod(out, mem_rows);
  WritePod(out, mem_cols);
  if (!memory_.empty()) {
    out->append(reinterpret_cast<const char*>(memory_.reps().data()),
                memory_.reps().size() * sizeof(double));
    WriteF64Vector(out, memory_.y());
    for (int t : memory_.t()) WritePod(out, static_cast<uint8_t>(t));
  }
  AppendChecksum(out);
  return Status::Ok();
}

Status CerlTrainer::DeserializeCheckpoint(std::string_view bytes) {
  if (stages_seen_ != 0) {
    return Status::FailedPrecondition(
        "checkpoint restore requires a fresh trainer");
  }
  Result<std::string_view> verified = VerifyChecksum(bytes, "checkpoint");
  if (!verified.ok()) return verified.status();
  const std::string_view payload = verified.value();

  // Everything below parses into locals; the trainer is mutated only in the
  // commit block at the end (all-or-nothing restore).
  ViewStreambuf buf(payload);
  std::istream in(&buf);
  BoundedReader r(&in, payload.size());

  char magic[8];
  CERL_RETURN_IF_ERROR(r.ReadRaw(magic, sizeof(magic), "magic"));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad checkpoint magic");
  }
  uint32_t stages = 0, input_dim = 0;
  CERL_RETURN_IF_ERROR(r.ReadPod(&stages, "stage count"));
  CERL_RETURN_IF_ERROR(r.ReadPod(&input_dim, "input dim"));
  // Counters land in ints; cap them so a corrupt value cannot go negative
  // through the cast (the checksum is integrity-only, not a trust boundary).
  if (stages == 0 || stages > (1u << 30)) {
    return Status::IoError("implausible checkpoint stage count " +
                           std::to_string(stages));
  }
  if (static_cast<int>(input_dim) != input_dim_) {
    return Status::InvalidArgument(
        "checkpoint input dim " + std::to_string(input_dim) +
        " does not match trainer input dim " + std::to_string(input_dim_));
  }

  Rng::State rng_state;
  for (uint64_t& word : rng_state.words) {
    CERL_RETURN_IF_ERROR(r.ReadPod(&word, "rng state"));
  }
  uint8_t rng_cached = 0;
  CERL_RETURN_IF_ERROR(r.ReadPod(&rng_cached, "rng cached flag"));
  if (rng_cached > 1) {
    return Status::IoError("checkpoint rng cached flag is not 0/1");
  }
  rng_state.has_cached_normal = rng_cached != 0;
  CERL_RETURN_IF_ERROR(r.ReadPod(&rng_state.cached_normal, "rng cached"));

  // Scaler dimensions must match the trainer's input dimension — a mismatch
  // means the file belongs to a different feature space and reading on would
  // standardize garbage.
  linalg::Vector x_mean, x_std;
  CERL_RETURN_IF_ERROR(
      ReadF64VectorExpected(&r, input_dim, &x_mean, "x-scaler mean"));
  CERL_RETURN_IF_ERROR(
      ReadF64VectorExpected(&r, input_dim, &x_std, "x-scaler std"));
  double y_mean = 0.0, y_std = 1.0;
  uint8_t y_fitted = 0;
  CERL_RETURN_IF_ERROR(r.ReadPod(&y_mean, "y-scaler mean"));
  CERL_RETURN_IF_ERROR(r.ReadPod(&y_std, "y-scaler std"));
  CERL_RETURN_IF_ERROR(r.ReadPod(&y_fitted, "y-scaler fitted flag"));
  if (y_fitted > 1) {
    return Status::IoError("checkpoint y-scaler flag is not 0/1");
  }

  // Fresh model with this trainer's architecture; the parameter block must
  // match it name-for-name and shape-for-shape (that is the architecture
  // compatibility check).
  auto model = std::make_unique<causal::CfrModel>(config_.net, config_.train,
                                                  input_dim_);
  {
    const auto before = in.tellg();
    CERL_RETURN_IF_ERROR(
        nn::LoadParametersFromStream(in, model->net().Parameters()));
    const auto after = in.tellg();
    if (before < 0 || after < before) {
      return Status::IoError("parameter block position tracking failed");
    }
    CERL_RETURN_IF_ERROR(r.Consume(static_cast<uint64_t>(after - before),
                                   "parameter block"));
  }

  uint32_t mem_rows = 0, mem_cols = 0;
  CERL_RETURN_IF_ERROR(r.ReadPod(&mem_rows, "memory rows"));
  CERL_RETURN_IF_ERROR(r.ReadPod(&mem_cols, "memory cols"));
  linalg::Matrix mem_reps;
  linalg::Vector mem_y;
  std::vector<int> mem_t;
  if (mem_rows > 0) {
    if (mem_rows > kMaxMemoryRows) {
      return Status::IoError("implausible memory row count " +
                             std::to_string(mem_rows));
    }
    if (static_cast<int>(mem_cols) != model->net().rep_dim()) {
      return Status::IoError(
          "memory rep dim " + std::to_string(mem_cols) +
          " does not match model rep dim " +
          std::to_string(model->net().rep_dim()));
    }
    const uint64_t rep_bytes =
        static_cast<uint64_t>(mem_rows) * mem_cols * sizeof(double);
    CERL_RETURN_IF_ERROR(r.Require(rep_bytes, "memory representations"));
    mem_reps.Resize(static_cast<int>(mem_rows), static_cast<int>(mem_cols));
    CERL_RETURN_IF_ERROR(
        r.ReadRaw(mem_reps.data(), rep_bytes, "memory representations"));
    CERL_RETURN_IF_ERROR(
        ReadF64VectorExpected(&r, mem_rows, &mem_y, "memory outcomes"));
    CERL_RETURN_IF_ERROR(r.Require(mem_rows, "memory treatments"));
    mem_t.resize(mem_rows);
    for (uint32_t i = 0; i < mem_rows; ++i) {
      uint8_t b = 0;
      CERL_RETURN_IF_ERROR(r.ReadPod(&b, "memory treatments"));
      if (b > 1) {
        return Status::IoError("memory treatment is not 0/1");
      }
      mem_t[i] = b;
    }
  }
  if (r.remaining() != 0) {
    return Status::IoError("checkpoint has " + std::to_string(r.remaining()) +
                           " trailing bytes");
  }

  // Commit: every field parsed and validated.
  model_ = std::move(model);
  causal::RepOutcomeNet& net = model_->net();
  net.x_scaler().Restore(std::move(x_mean), std::move(x_std));
  if (y_fitted) net.y_scaler().Restore(y_mean, y_std);
  memory_.Clear();
  if (mem_rows > 0) memory_.Append(mem_reps, mem_y, mem_t);
  stages_seen_ = static_cast<int>(stages);
  rng_.RestoreState(rng_state);
  return Status::Ok();
}

Status CerlTrainer::SaveCheckpoint(const std::string& path) {
  std::string payload;
  CERL_RETURN_IF_ERROR(SerializeCheckpoint(&payload));
  return WriteFileAtomic(path, payload);
}

Status CerlTrainer::LoadCheckpoint(const std::string& path) {
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeCheckpoint(bytes.value());
}

}  // namespace cerl::core
