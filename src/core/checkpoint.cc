// CERL checkpointing: persists exactly the state the method itself keeps
// between stages — the current model h_{theta_d}(g_{w_d}) with its scalers,
// the representation memory M_d, and the stage counter. By construction no
// raw covariates of past domains are written (the accessibility criterion),
// so a checkpoint is as privacy-compatible as the in-memory state.
//
// Format: "CERLCKP1", u32 stage_count, u32 input_dim,
//         x-scaler (u32 dim, mean[], std[]),
//         y-scaler (f64 mean, f64 std, u8 fitted),
//         parameter block (nn/serialize framing),
//         memory (u32 rows, u32 cols, reps[], y[], t[] as u8).
#include <cstdint>
#include <cstring>
#include <fstream>

#include "core/cerl_trainer.h"
#include "nn/serialize.h"

namespace cerl::core {
namespace {

constexpr char kMagic[8] = {'C', 'E', 'R', 'L', 'C', 'K', 'P', '1'};

void WriteVector(std::ostream& out, const linalg::Vector& v) {
  const uint32_t n = static_cast<uint32_t>(v.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

Status ReadVector(std::istream& in, linalg::Vector* v) {
  uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return Status::IoError("truncated checkpoint (vector size)");
  v->resize(n);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!in) return Status::IoError("truncated checkpoint (vector data)");
  return Status::Ok();
}

}  // namespace

Status CerlTrainer::SaveCheckpoint(const std::string& path) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition(
        "nothing to checkpoint: no domain observed yet");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);

  out.write(kMagic, sizeof(kMagic));
  const uint32_t stages = static_cast<uint32_t>(stages_seen_);
  const uint32_t input_dim = static_cast<uint32_t>(input_dim_);
  out.write(reinterpret_cast<const char*>(&stages), sizeof(stages));
  out.write(reinterpret_cast<const char*>(&input_dim), sizeof(input_dim));

  causal::RepOutcomeNet& net = model_->net();
  WriteVector(out, net.x_scaler().mean());
  WriteVector(out, net.x_scaler().std());
  const double y_mean = net.y_scaler().mean();
  const double y_std = net.y_scaler().scale();
  const uint8_t y_fitted = net.y_scaler().fitted() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&y_mean), sizeof(y_mean));
  out.write(reinterpret_cast<const char*>(&y_std), sizeof(y_std));
  out.write(reinterpret_cast<const char*>(&y_fitted), sizeof(y_fitted));

  CERL_RETURN_IF_ERROR(nn::SaveParametersToStream(out, net.Parameters()));

  const uint32_t mem_rows = static_cast<uint32_t>(memory_.size());
  const uint32_t mem_cols =
      memory_.empty() ? 0 : static_cast<uint32_t>(memory_.rep_dim());
  out.write(reinterpret_cast<const char*>(&mem_rows), sizeof(mem_rows));
  out.write(reinterpret_cast<const char*>(&mem_cols), sizeof(mem_cols));
  if (!memory_.empty()) {
    out.write(reinterpret_cast<const char*>(memory_.reps().data()),
              static_cast<std::streamsize>(memory_.reps().size() *
                                           sizeof(double)));
    WriteVector(out, memory_.y());
    for (int t : memory_.t()) {
      const uint8_t b = static_cast<uint8_t>(t);
      out.write(reinterpret_cast<const char*>(&b), sizeof(b));
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status CerlTrainer::LoadCheckpoint(const std::string& path) {
  if (stages_seen_ != 0) {
    return Status::FailedPrecondition(
        "LoadCheckpoint requires a fresh trainer");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad checkpoint magic in " + path);
  }
  uint32_t stages = 0, input_dim = 0;
  in.read(reinterpret_cast<char*>(&stages), sizeof(stages));
  in.read(reinterpret_cast<char*>(&input_dim), sizeof(input_dim));
  if (!in) return Status::IoError("truncated checkpoint header");
  if (static_cast<int>(input_dim) != input_dim_) {
    return Status::InvalidArgument(
        "checkpoint input dim " + std::to_string(input_dim) +
        " does not match trainer input dim " + std::to_string(input_dim_));
  }

  linalg::Vector x_mean, x_std;
  CERL_RETURN_IF_ERROR(ReadVector(in, &x_mean));
  CERL_RETURN_IF_ERROR(ReadVector(in, &x_std));
  double y_mean = 0.0, y_std = 1.0;
  uint8_t y_fitted = 0;
  in.read(reinterpret_cast<char*>(&y_mean), sizeof(y_mean));
  in.read(reinterpret_cast<char*>(&y_std), sizeof(y_std));
  in.read(reinterpret_cast<char*>(&y_fitted), sizeof(y_fitted));
  if (!in) return Status::IoError("truncated checkpoint scalers");

  // Rebuild the model with the same architecture, then overwrite weights.
  model_ = std::make_unique<causal::CfrModel>(config_.net, config_.train,
                                              input_dim_);
  causal::RepOutcomeNet& net = model_->net();
  CERL_RETURN_IF_ERROR(nn::LoadParametersFromStream(in, net.Parameters()));
  net.x_scaler().Restore(std::move(x_mean), std::move(x_std));
  if (y_fitted) net.y_scaler().Restore(y_mean, y_std);

  uint32_t mem_rows = 0, mem_cols = 0;
  in.read(reinterpret_cast<char*>(&mem_rows), sizeof(mem_rows));
  in.read(reinterpret_cast<char*>(&mem_cols), sizeof(mem_cols));
  if (!in) return Status::IoError("truncated checkpoint memory header");
  memory_.Clear();
  if (mem_rows > 0) {
    linalg::Matrix reps(mem_rows, mem_cols);
    in.read(reinterpret_cast<char*>(reps.data()),
            static_cast<std::streamsize>(reps.size() * sizeof(double)));
    linalg::Vector y;
    CERL_RETURN_IF_ERROR(ReadVector(in, &y));
    if (y.size() != mem_rows) {
      return Status::IoError("memory outcome size mismatch");
    }
    std::vector<int> t(mem_rows);
    for (uint32_t i = 0; i < mem_rows; ++i) {
      uint8_t b = 0;
      in.read(reinterpret_cast<char*>(&b), sizeof(b));
      t[i] = b;
    }
    if (!in) return Status::IoError("truncated checkpoint memory");
    memory_.Append(reps, y, t);
  }
  stages_seen_ = static_cast<int>(stages);
  return Status::Ok();
}

}  // namespace cerl::core
