#include "core/cerl_trainer.h"

#include <algorithm>
#include <string>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "train/train_loop.h"
#include "util/logging.h"

namespace cerl::core {

using autodiff::Var;
using causal::TrainStats;

CerlTrainer::CerlTrainer(const CerlConfig& config, int input_dim)
    : config_(config), input_dim_(input_dim), rng_(config.train.seed ^ 0xCE51) {}

causal::RepOutcomeNet* CerlTrainer::current_net() {
  CERL_CHECK(model_ != nullptr);
  return &model_->net();
}

TrainStats CerlTrainer::ObserveDomain(const data::DataSplit& split) {
  ++stages_seen_;
  if (stages_seen_ == 1) return TrainBaseline(split);
  return TrainContinual(split);
}

linalg::Vector CerlTrainer::PredictIte(const linalg::Matrix& x_raw) {
  CERL_CHECK(model_ != nullptr);
  return model_->PredictIte(x_raw);
}

causal::CausalMetrics CerlTrainer::Evaluate(const data::CausalDataset& test) {
  return causal::EvaluateOnDataset(test, PredictIte(test.x));
}

void CerlTrainer::SeedMemoryFromCurrent(const data::CausalDataset& train) {
  if (!config_.use_transform) return;  // w/o FRT: no memory is kept at all.
  const linalg::Matrix reps = model_->net().Representations(train.x);
  memory_.Append(reps, train.y, train.t);
  memory_.Reduce(config_.memory_capacity, config_.use_herding, &rng_);
}

TrainStats CerlTrainer::TrainBaseline(const data::DataSplit& split) {
  causal::TrainConfig train_config = config_.train;
  model_ = std::make_unique<causal::CfrModel>(config_.net, train_config,
                                              input_dim_);
  TrainStats stats = model_->Train(split.train, split.valid);
  SeedMemoryFromCurrent(split.train);
  CERL_LOG(Debug) << "CERL baseline stage done: memory " << memory_.size()
                  << " units, best valid loss " << stats.best_valid_loss;
  return stats;
}

TrainStats CerlTrainer::TrainContinual(const data::DataSplit& split) {
  using namespace autodiff;  // NOLINT
  const data::CausalDataset& train = split.train;
  const data::CausalDataset& valid = split.valid;
  train.CheckConsistent();

  // The previous model is frozen for distillation; the new model becomes
  // the current learner.
  old_model_ = std::move(model_);
  causal::TrainConfig stage_train = config_.train;
  stage_train.seed = config_.train.seed + 7919 * stages_seen_;
  stage_train.learning_rate *= config_.continual_lr_scale;
  model_ = std::make_unique<causal::CfrModel>(config_.net, stage_train,
                                              input_dim_);
  causal::RepOutcomeNet& net = model_->net();
  causal::RepOutcomeNet& old_net = old_model_->net();
  if (config_.init_from_previous) {
    // Warm start copies weights AND scalers: the representation space must
    // stay consistent across stages — the memory holds representations in
    // the old space and the distillation target is the old model, both of
    // which assume the same input normalization. Refitting scalers each
    // stage would silently re-map previous-domain units.
    net.CopyParametersFrom(old_net);
  } else {
    // Cold start: scalers come from the new domain (plus memory outcomes
    // for y, since the heads fit both — Eq. 8).
    net.x_scaler().Fit(train.x);
    linalg::Vector y_all = train.y;
    y_all.insert(y_all.end(), memory_.y().begin(), memory_.y().end());
    net.y_scaler().Fit(y_all);
  }

  const linalg::Matrix x_train = net.x_scaler().Apply(train.x);
  const linalg::Vector y_train = net.y_scaler().Transform(train.y);
  const linalg::Matrix x_valid = net.x_scaler().Apply(valid.x);
  const linalg::Vector y_valid = net.y_scaler().Transform(valid.y);

  // Old-model representations of the new data, computed once (frozen).
  const linalg::Matrix old_reps_train = old_net.Representations(train.x);

  // phi and the joint parameter set (Algorithm 1: OPTIMIZE over w_d,
  // theta_d, phi).
  Rng phi_rng(stage_train.seed ^ 0xF17A);
  TransformNet phi(&phi_rng, net.rep_dim(), config_.transform_hidden);
  std::vector<Parameter*> params = net.Parameters();
  if (config_.use_transform || config_.delta > 0.0) {
    for (Parameter* p : phi.Parameters()) params.push_back(p);
  }
  const bool use_memory = config_.use_transform && !memory_.empty();
  const int mem_batch =
      use_memory ? std::min(stage_train.batch_size, memory_.size()) : 0;

  Rng loop_rng(stage_train.seed ^ 0xB007);
  // Retention-aware early stopping: new-domain factual loss plus the
  // replay loss over the whole memory bank. The distillation term must NOT
  // enter the selection criterion: it is exactly zero at the warm-started
  // initialization, which would make the un-adapted old model an
  // unbeatable snapshot and block adaptation entirely.
  auto valid_loss_fn = [&]() {
    Tape tape;
    Var x = tape.Constant(x_valid);
    causal::FactualForward vfwd =
        causal::BuildFactualLoss(&net, &tape, x, valid.t, y_valid);
    double loss = vfwd.loss.scalar();
    if (use_memory) {
      Var mem_rep = tape.Constant(memory_.reps());
      Var mem_mapped = phi.Forward(&tape, mem_rep);
      std::vector<int> idx_t, idx_c;
      linalg::Vector y_t, y_c;
      for (int i = 0; i < memory_.size(); ++i) {
        const double ys = net.y_scaler().Transform(memory_.y()[i]);
        if (memory_.t()[i] == 1) {
          idx_t.push_back(i);
          y_t.push_back(ys);
        } else {
          idx_c.push_back(i);
          y_c.push_back(ys);
        }
      }
      double sse = 0.0;
      if (!idx_t.empty()) {
        Var pred = net.Head(&tape, GatherRows(mem_mapped, idx_t), 1);
        for (size_t i = 0; i < idx_t.size(); ++i) {
          const double d = pred.value()(static_cast<int>(i), 0) - y_t[i];
          sse += d * d;
        }
      }
      if (!idx_c.empty()) {
        Var pred = net.Head(&tape, GatherRows(mem_mapped, idx_c), 0);
        for (size_t i = 0; i < idx_c.size(); ++i) {
          const double d = pred.value()(static_cast<int>(i), 0) - y_c[i];
          sse += d * d;
        }
      }
      loss += sse / memory_.size();
    }
    return loss;
  };
  // Eq. 9 per-batch objective; the epoch/minibatch/early-stopping mechanics
  // live in train::TrainLoop, which assembles (and prefetches) the row
  // gathers of x_train and old_reps_train. Scalar/memory gathers and the
  // factual/memory split land in step-reused scratch, and the Sinkhorn
  // workspace (owned here, next to the loop's persistent tapes) warm-starts
  // the balancing duals from the previous step.
  std::vector<int> batch_t;
  linalg::Vector batch_y;
  linalg::Matrix mem_rep_gathered;
  causal::FactualScratch factual_scratch;
  ot::SinkhornWorkspace sinkhorn_ws;
  // Second scratch for the memory-batch split: same fields, same
  // tape-aliasing lifetime contract (see FactualScratch), filled here
  // because the memory targets route through mem_idx and the y scaler.
  causal::FactualScratch mem_scratch;
  auto batch_loss = [&](Tape* tape, train::IndexSpan idx,
                        const std::vector<linalg::Matrix>& gathered) -> Var {
    causal::GatherTreatOutcome(train.t, y_train, idx, &batch_t, &batch_y);
    Var x = tape->ConstantView(&gathered[0]);
    // L_G new-data term (Eq. 8, second sum) + group representations.
    causal::FactualForward fwd = causal::BuildFactualLoss(
        &net, tape, x, batch_t, batch_y, &factual_scratch);
    Var loss = fwd.loss;

    // Feature representation distillation, Eq. 6.
    Var old_rep = tape->ConstantView(&gathered[1]);
    if (config_.beta > 0.0) {
      loss = Add(loss, ScalarMul(MeanCosineDistance(fwd.rep, old_rep),
                                 config_.beta));
    }
    // Feature representation transformation, Eq. 7. The new-model
    // representation enters as a detached target: Eq. 7 trains phi to map
    // the old space onto the new one, it must not drag g_{w_d} toward
    // phi's (initially arbitrary) output.
    if (config_.delta > 0.0) {
      Var phi_out = phi.Forward(tape, old_rep);
      Var rep_target = tape->Constant(fwd.rep.value());
      loss = Add(loss, ScalarMul(MeanCosineDistance(phi_out, rep_target),
                                 config_.delta));
    }

    Var rep_treated_global = fwd.rep_treated;
    Var rep_control_global = fwd.rep_control;
    int n_treated = fwd.n_treated;
    int n_control = fwd.n_control;

    if (use_memory) {
      // Memory replay: transformed old representations join the global
      // representation space (Eq. 8 first sum; balanced IPM below).
      const std::vector<int> mem_idx =
          memory_.SampleBatch(mem_batch, &loop_rng);
      memory_.reps().GatherRowsInto(mem_idx.data(), mem_batch,
                                    &mem_rep_gathered);
      Var mem_rep = tape->ConstantView(&mem_rep_gathered);
      Var mem_transformed = phi.Forward(tape, mem_rep);

      std::vector<int>& mem_treated_idx = mem_scratch.treated_idx;
      std::vector<int>& mem_control_idx = mem_scratch.control_idx;
      mem_treated_idx.clear();
      mem_control_idx.clear();
      for (int i = 0; i < mem_batch; ++i) {
        if (memory_.t()[mem_idx[i]] == 1) {
          mem_treated_idx.push_back(i);
        } else {
          mem_control_idx.push_back(i);
        }
      }
      mem_scratch.y_treated.Resize(static_cast<int>(mem_treated_idx.size()),
                                   1);
      for (size_t i = 0; i < mem_treated_idx.size(); ++i) {
        mem_scratch.y_treated(static_cast<int>(i), 0) =
            net.y_scaler().Transform(memory_.y()[mem_idx[mem_treated_idx[i]]]);
      }
      mem_scratch.y_control.Resize(static_cast<int>(mem_control_idx.size()),
                                   1);
      for (size_t i = 0; i < mem_control_idx.size(); ++i) {
        mem_scratch.y_control(static_cast<int>(i), 0) =
            net.y_scaler().Transform(memory_.y()[mem_idx[mem_control_idx[i]]]);
      }
      Var mem_sse = tape->Constant(linalg::Matrix(1, 1, 0.0));
      if (!mem_treated_idx.empty()) {
        Var rep_t = GatherRows(mem_transformed, mem_treated_idx);
        Var pred = net.Head(tape, rep_t, 1);
        Var target = tape->ConstantView(&mem_scratch.y_treated);
        mem_sse = Add(mem_sse, Sum(Square(Sub(pred, target))));
        // The memory side joins the global IPM as a detached reference
        // distribution: balancing must shape the new representations (and
        // heads), not bend phi away from its Eq. 7 alignment target.
        rep_treated_global =
            ConcatRows(rep_treated_global, tape->Constant(rep_t.value()));
        n_treated += static_cast<int>(mem_treated_idx.size());
      }
      if (!mem_control_idx.empty()) {
        Var rep_c = GatherRows(mem_transformed, mem_control_idx);
        Var pred = net.Head(tape, rep_c, 0);
        Var target = tape->ConstantView(&mem_scratch.y_control);
        mem_sse = Add(mem_sse, Sum(Square(Sub(pred, target))));
        rep_control_global =
            ConcatRows(rep_control_global, tape->Constant(rep_c.value()));
        n_control += static_cast<int>(mem_control_idx.size());
      }
      loss = Add(loss, ScalarMul(mem_sse, 1.0 / std::max(1, mem_batch)));
    }

    // Balance the global representation space (Eq. 3 over memory ∪ new).
    if (stage_train.alpha > 0.0 && n_treated > 0 && n_control > 0) {
      Var ipm =
          ot::IpmPenalty(stage_train.ipm, rep_treated_global,
                         rep_control_global, stage_train.sinkhorn,
                         &sinkhorn_ws);
      loss = Add(loss, ScalarMul(ipm, stage_train.alpha));
    }
    // Elastic net on the new feature-selection layer (Eq. 1).
    if (stage_train.lambda > 0.0) {
      Var w1 = tape->Param(&net.FirstLayerWeight());
      loss = Add(loss, ScalarMul(ElasticNetPenalty(w1), stage_train.lambda));
    }
    return loss;
  };

  train::TrainLoop loop(
      causal::MakeLoopOptions(stage_train,
                              "cerl stage " + std::to_string(stages_seen_)),
      params, &loop_rng);
  TrainStats stats = loop.Run(train.num_units(), {&x_train, &old_reps_train},
                              batch_loss, valid_loss_fn);

  // Memory migration: M_d = Herding({R_d, Y_d, T_d} ∪ phi(M_{d-1})).
  if (config_.use_transform) {
    memory_.Transform(
        [&phi](const linalg::Matrix& reps) { return phi.Apply(reps); });
    const linalg::Matrix new_reps = net.Representations(train.x);
    memory_.Append(new_reps, train.y, train.t);
    memory_.Reduce(config_.memory_capacity, config_.use_herding, &rng_);
  }
  CERL_LOG(Debug) << "CERL stage " << stages_seen_ << " done: memory "
                  << memory_.size() << " units, best valid loss "
                  << stats.best_valid_loss;
  return stats;
}

}  // namespace cerl::core
