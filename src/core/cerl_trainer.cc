#include "core/cerl_trainer.h"

#include <algorithm>
#include <cmath>
#include <string>

#include <limits>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "ot/workspace_pool.h"
#include "train/train_loop.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace cerl::core {

using autodiff::Var;
using causal::TrainStats;

namespace {

// Non-aborting shape/finiteness checks for one dataset of a split. With
// `require_ground_truth` the mu0/mu1 columns must align with the units
// (CheckConsistent's contract, enforced on the training split); otherwise
// they may be absent (both empty) — evaluation is then skipped downstream.
Status CheckDataset(const data::CausalDataset& d, int input_dim,
                    const char* which, bool require_ground_truth) {
  const int n = d.x.rows();
  if (n == 0) {
    return Status::InvalidArgument(std::string(which) + ": empty dataset");
  }
  if (d.x.cols() != input_dim) {
    return Status::InvalidArgument(std::string(which) +
                                   ": feature dimension mismatch");
  }
  if (static_cast<int>(d.t.size()) != n ||
      static_cast<int>(d.y.size()) != n) {
    return Status::InvalidArgument(std::string(which) +
                                   ": misaligned t/y lengths");
  }
  const bool mu_aligned = static_cast<int>(d.mu0.size()) == n &&
                          static_cast<int>(d.mu1.size()) == n;
  const bool mu_absent = d.mu0.empty() && d.mu1.empty();
  if (require_ground_truth ? !mu_aligned : !(mu_aligned || mu_absent)) {
    return Status::InvalidArgument(std::string(which) +
                                   ": misaligned mu0/mu1 lengths");
  }
  for (int t : d.t) {
    if (t != 0 && t != 1) {
      return Status::InvalidArgument(std::string(which) +
                                     ": non-binary treatment");
    }
  }
  for (int64_t i = 0; i < d.x.size(); ++i) {
    if (!std::isfinite(d.x.data()[i])) {
      return Status::InvalidArgument(std::string(which) +
                                     ": non-finite covariate");
    }
  }
  for (double y : d.y) {
    if (!std::isfinite(y)) {
      return Status::InvalidArgument(std::string(which) +
                                     ": non-finite outcome");
    }
  }
  return Status::Ok();
}

}  // namespace

CerlTrainer::CerlTrainer(const CerlConfig& config, int input_dim)
    : config_(config), input_dim_(input_dim), rng_(config.train.seed ^ 0xCE51) {}

causal::RepOutcomeNet* CerlTrainer::current_net() {
  CERL_CHECK(model_ != nullptr);
  return &model_->net();
}

void CerlTrainer::Reset() {
  model_.reset();
  old_model_.reset();
  memory_.Clear();
  stages_seen_ = 0;
  rng_ = Rng(config_.train.seed ^ 0xCE51);
}

Status CerlTrainer::CheckNumericalHealth() {
  if (model_ == nullptr) return Status::Ok();
  for (const autodiff::Parameter* p : model_->net().Parameters()) {
    const linalg::Matrix& value = p->value;
    for (int64_t i = 0; i < value.size(); ++i) {
      if (!std::isfinite(value.data()[i])) {
        return Status::NumericalError("non-finite parameter " + p->name);
      }
    }
  }
  const linalg::Matrix& reps = memory_.reps();
  for (int64_t i = 0; i < reps.size(); ++i) {
    if (!std::isfinite(reps.data()[i])) {
      return Status::NumericalError("non-finite memory representation");
    }
  }
  return Status::Ok();
}

Status CerlTrainer::ValidateDomain(const data::DataSplit& split,
                                   int input_dim) {
  // BeginStage runs CheckConsistent on the training split (which requires
  // aligned ground truth); mirror that here so a bad domain is rejected by
  // pre-flight validation instead of aborting mid-pipeline.
  CERL_RETURN_IF_ERROR(CheckDataset(split.train, input_dim, "train",
                                    /*require_ground_truth=*/true));
  CERL_RETURN_IF_ERROR(CheckDataset(split.valid, input_dim, "valid",
                                    /*require_ground_truth=*/false));
  // The test split is evaluation-only; mu-less test data is allowed (the
  // engine then skips PEHE/ATE scoring for the domain).
  if (split.test.num_units() > 0) {
    CERL_RETURN_IF_ERROR(CheckDataset(split.test, input_dim, "test",
                                      /*require_ground_truth=*/false));
  }
  return Status::Ok();
}

TrainStats CerlTrainer::ObserveDomain(const data::DataSplit& split) {
  std::unique_ptr<StageContext> ctx = BeginStage(split);
  TrainStats stats = TrainStage(ctx.get());
  MigrateStage(ctx.get());
  return stats;
}

linalg::Vector CerlTrainer::PredictIte(const linalg::Matrix& x_raw) {
  CERL_CHECK(model_ != nullptr);
  return model_->PredictIte(x_raw);
}

causal::CausalMetrics CerlTrainer::Evaluate(const data::CausalDataset& test) {
  return causal::EvaluateOnDataset(test, PredictIte(test.x));
}

void CerlTrainer::SeedMemoryFromCurrent(const data::CausalDataset& train) {
  if (!config_.use_transform) return;  // w/o FRT: no memory is kept at all.
  const linalg::Matrix reps = model_->net().Representations(train.x);
  memory_.Append(reps, train.y, train.t);
  memory_.Reduce(config_.memory_capacity, config_.use_herding, &rng_);
}

std::unique_ptr<CerlTrainer::StageContext> CerlTrainer::BeginStage(
    const data::DataSplit& split) {
  auto ctx = std::make_unique<StageContext>();
  ctx->split = &split;
  ++stages_seen_;
  ctx->stage = stages_seen_;

  if (stages_seen_ == 1) {
    // Baseline stage (Eq. 5): plain CFR; standardization happens inside
    // CfrModel::Train (scalers fitted on the first domain anchor the
    // representation space for every later stage).
    ctx->baseline = true;
    ctx->stage_train = config_.train;
    model_ = std::make_unique<causal::CfrModel>(config_.net, ctx->stage_train,
                                                input_dim_);
    return ctx;
  }

  const data::CausalDataset& train = split.train;
  const data::CausalDataset& valid = split.valid;
  train.CheckConsistent();

  // The previous model is frozen for distillation; the new model becomes
  // the current learner.
  old_model_ = std::move(model_);
  causal::TrainConfig stage_train = config_.train;
  stage_train.seed = config_.train.seed + 7919 * stages_seen_;
  stage_train.learning_rate *= config_.continual_lr_scale;
  model_ = std::make_unique<causal::CfrModel>(config_.net, stage_train,
                                              input_dim_);
  causal::RepOutcomeNet& net = model_->net();
  causal::RepOutcomeNet& old_net = old_model_->net();
  if (config_.init_from_previous) {
    // Warm start copies weights AND scalers: the representation space must
    // stay consistent across stages — the memory holds representations in
    // the old space and the distillation target is the old model, both of
    // which assume the same input normalization. Refitting scalers each
    // stage would silently re-map previous-domain units.
    net.CopyParametersFrom(old_net);
  } else {
    // Cold start: scalers come from the new domain (plus memory outcomes
    // for y, since the heads fit both — Eq. 8).
    net.x_scaler().Fit(train.x);
    linalg::Vector y_all = train.y;
    y_all.insert(y_all.end(), memory_.y().begin(), memory_.y().end());
    net.y_scaler().Fit(y_all);
  }

  // Standardize once per stage; these live in the context so the stream
  // engine can hand the prepared stage between workers.
  ctx->stage_train = stage_train;
  ctx->x_train = net.x_scaler().Apply(train.x);
  ctx->y_train = net.y_scaler().Transform(train.y);
  ctx->x_valid = net.x_scaler().Apply(valid.x);
  ctx->y_valid = net.y_scaler().Transform(valid.y);

  // Old-model representations of the new data, computed once (frozen).
  ctx->old_reps_train = old_net.Representations(train.x);

  // phi and the joint parameter set (Algorithm 1: OPTIMIZE over w_d,
  // theta_d, phi).
  Rng phi_rng(stage_train.seed ^ 0xF17A);
  ctx->phi = std::make_unique<TransformNet>(&phi_rng, net.rep_dim(),
                                            config_.transform_hidden);
  ctx->params = net.Parameters();
  if (config_.use_transform || config_.delta > 0.0) {
    for (autodiff::Parameter* p : ctx->phi->Parameters()) {
      ctx->params.push_back(p);
    }
  }
  ctx->use_memory = config_.use_transform && !memory_.empty();
  ctx->mem_batch =
      ctx->use_memory ? std::min(stage_train.batch_size, memory_.size()) : 0;
  ctx->loop_rng = Rng(stage_train.seed ^ 0xB007);

  if (stage_train.async_validation) {
    // Clones for off-thread validation scoring: snapshots are restored into
    // these while the live net/phi keep training. Architecture (and copied
    // scalers) match the live models; values are overwritten per score.
    ctx->valid_net =
        causal::MakeValidationClone(config_.net, net, stage_train.seed);
    Rng phi_clone_rng(stage_train.seed ^ 0xF1C10);
    ctx->valid_phi = std::make_unique<TransformNet>(
        &phi_clone_rng, net.rep_dim(), config_.transform_hidden);
  }
  return ctx;
}

double CerlTrainer::StageValidLoss(causal::RepOutcomeNet* net,
                                   TransformNet* phi,
                                   const StageContext& ctx) {
  using namespace autodiff;  // NOLINT
  // Retention-aware early stopping: new-domain factual loss plus the
  // replay loss over the whole memory bank. The distillation term must NOT
  // enter the selection criterion: it is exactly zero at the warm-started
  // initialization, which would make the un-adapted old model an
  // unbeatable snapshot and block adaptation entirely.
  Tape tape;
  Var x = tape.Constant(ctx.x_valid);
  causal::FactualForward vfwd = causal::BuildFactualLoss(
      net, &tape, x, ctx.split->valid.t, ctx.y_valid);
  double loss = vfwd.loss.scalar();
  if (ctx.use_memory) {
    Var mem_rep = tape.Constant(memory_.reps());
    Var mem_mapped = phi->Forward(&tape, mem_rep);
    std::vector<int> idx_t, idx_c;
    linalg::Vector y_t, y_c;
    for (int i = 0; i < memory_.size(); ++i) {
      const double ys = net->y_scaler().Transform(memory_.y()[i]);
      if (memory_.t()[i] == 1) {
        idx_t.push_back(i);
        y_t.push_back(ys);
      } else {
        idx_c.push_back(i);
        y_c.push_back(ys);
      }
    }
    double sse = 0.0;
    if (!idx_t.empty()) {
      Var pred = net->Head(&tape, GatherRows(mem_mapped, idx_t), 1);
      for (size_t i = 0; i < idx_t.size(); ++i) {
        const double d = pred.value()(static_cast<int>(i), 0) - y_t[i];
        sse += d * d;
      }
    }
    if (!idx_c.empty()) {
      Var pred = net->Head(&tape, GatherRows(mem_mapped, idx_c), 0);
      for (size_t i = 0; i < idx_c.size(); ++i) {
        const double d = pred.value()(static_cast<int>(i), 0) - y_c[i];
        sse += d * d;
      }
    }
    loss += sse / memory_.size();
  }
  return loss;
}

TrainStats CerlTrainer::TrainStage(StageContext* ctx) {
  CERL_CHECK(ctx != nullptr);
  if (ctx->baseline) {
    ctx->stats = model_->Train(ctx->split->train, ctx->split->valid);
    return ctx->stats;
  }
  ctx->stats = TrainContinualStage(ctx);
  return ctx->stats;
}

TrainStats CerlTrainer::TrainContinualStage(StageContext* ctx) {
  using namespace autodiff;  // NOLINT
  const data::CausalDataset& train = ctx->split->train;
  const causal::TrainConfig& stage_train = ctx->stage_train;
  causal::RepOutcomeNet& net = model_->net();
  TransformNet& phi = *ctx->phi;
  const bool use_memory = ctx->use_memory;
  const int mem_batch = ctx->mem_batch;
  Rng& loop_rng = ctx->loop_rng;

  auto valid_loss_fn = [this, ctx, &net, &phi]() {
    return StageValidLoss(&net, &phi, *ctx);
  };
  // Eq. 9 per-batch objective; the epoch/minibatch/early-stopping mechanics
  // live in train::TrainLoop, which assembles (and prefetches) the row
  // gathers of x_train and old_reps_train. Scalar/memory gathers and the
  // factual/memory split land in step-reused scratch, and the Sinkhorn
  // workspaces (owned here, next to the loop's persistent tapes, pooled by
  // the global treated/control split) warm-start the balancing duals from
  // the previous step with the same split.
  std::vector<int> batch_t;
  linalg::Vector batch_y;
  linalg::Matrix mem_rep_gathered;
  causal::FactualScratch factual_scratch;
  ot::SinkhornWorkspacePool sinkhorn_pool;
  // Second scratch for the memory-batch split: same fields, same
  // tape-aliasing lifetime contract (see FactualScratch), filled here
  // because the memory targets route through mem_idx and the y scaler.
  causal::FactualScratch mem_scratch;
  auto batch_loss = [&](Tape* tape, train::IndexSpan idx,
                        const std::vector<linalg::Matrix>& gathered) -> Var {
    causal::GatherTreatOutcome(train.t, ctx->y_train, idx, &batch_t,
                               &batch_y);
    Var x = tape->ConstantView(&gathered[0]);
    // L_G new-data term (Eq. 8, second sum) + group representations.
    causal::FactualForward fwd = causal::BuildFactualLoss(
        &net, tape, x, batch_t, batch_y, &factual_scratch);
    Var loss = fwd.loss;

    // Feature representation distillation, Eq. 6.
    Var old_rep = tape->ConstantView(&gathered[1]);
    if (config_.beta > 0.0) {
      loss = Add(loss, ScalarMul(MeanCosineDistance(fwd.rep, old_rep),
                                 config_.beta));
    }
    // Feature representation transformation, Eq. 7. The new-model
    // representation enters as a detached target: Eq. 7 trains phi to map
    // the old space onto the new one, it must not drag g_{w_d} toward
    // phi's (initially arbitrary) output.
    if (config_.delta > 0.0) {
      Var phi_out = phi.Forward(tape, old_rep);
      Var rep_target = tape->Constant(fwd.rep.value());
      loss = Add(loss, ScalarMul(MeanCosineDistance(phi_out, rep_target),
                                 config_.delta));
    }

    Var rep_treated_global = fwd.rep_treated;
    Var rep_control_global = fwd.rep_control;
    int n_treated = fwd.n_treated;
    int n_control = fwd.n_control;

    if (use_memory) {
      // Memory replay: transformed old representations join the global
      // representation space (Eq. 8 first sum; balanced IPM below).
      const std::vector<int> mem_idx =
          memory_.SampleBatch(mem_batch, &loop_rng);
      memory_.reps().GatherRowsInto(mem_idx.data(), mem_batch,
                                    &mem_rep_gathered);
      Var mem_rep = tape->ConstantView(&mem_rep_gathered);
      Var mem_transformed = phi.Forward(tape, mem_rep);

      std::vector<int>& mem_treated_idx = mem_scratch.treated_idx;
      std::vector<int>& mem_control_idx = mem_scratch.control_idx;
      mem_treated_idx.clear();
      mem_control_idx.clear();
      for (int i = 0; i < mem_batch; ++i) {
        if (memory_.t()[mem_idx[i]] == 1) {
          mem_treated_idx.push_back(i);
        } else {
          mem_control_idx.push_back(i);
        }
      }
      mem_scratch.y_treated.Resize(static_cast<int>(mem_treated_idx.size()),
                                   1);
      for (size_t i = 0; i < mem_treated_idx.size(); ++i) {
        mem_scratch.y_treated(static_cast<int>(i), 0) =
            net.y_scaler().Transform(memory_.y()[mem_idx[mem_treated_idx[i]]]);
      }
      mem_scratch.y_control.Resize(static_cast<int>(mem_control_idx.size()),
                                   1);
      for (size_t i = 0; i < mem_control_idx.size(); ++i) {
        mem_scratch.y_control(static_cast<int>(i), 0) =
            net.y_scaler().Transform(memory_.y()[mem_idx[mem_control_idx[i]]]);
      }
      Var mem_sse = tape->Constant(linalg::Matrix(1, 1, 0.0));
      if (!mem_treated_idx.empty()) {
        Var rep_t = GatherRows(mem_transformed, mem_treated_idx);
        Var pred = net.Head(tape, rep_t, 1);
        Var target = tape->ConstantView(&mem_scratch.y_treated);
        mem_sse = Add(mem_sse, Sum(Square(Sub(pred, target))));
        // The memory side joins the global IPM as a detached reference
        // distribution: balancing must shape the new representations (and
        // heads), not bend phi away from its Eq. 7 alignment target.
        rep_treated_global =
            ConcatRows(rep_treated_global, tape->Constant(rep_t.value()));
        n_treated += static_cast<int>(mem_treated_idx.size());
      }
      if (!mem_control_idx.empty()) {
        Var rep_c = GatherRows(mem_transformed, mem_control_idx);
        Var pred = net.Head(tape, rep_c, 0);
        Var target = tape->ConstantView(&mem_scratch.y_control);
        mem_sse = Add(mem_sse, Sum(Square(Sub(pred, target))));
        rep_control_global =
            ConcatRows(rep_control_global, tape->Constant(rep_c.value()));
        n_control += static_cast<int>(mem_control_idx.size());
      }
      loss = Add(loss, ScalarMul(mem_sse, 1.0 / std::max(1, mem_batch)));
    }

    // Balance the global representation space (Eq. 3 over memory ∪ new).
    if (stage_train.alpha > 0.0 && n_treated > 0 && n_control > 0) {
      Var ipm =
          ot::IpmPenalty(stage_train.ipm, rep_treated_global,
                         rep_control_global, stage_train.sinkhorn,
                         sinkhorn_pool.Acquire(n_treated, n_control));
      loss = Add(loss, ScalarMul(ipm, stage_train.alpha));
    }
    // Elastic net on the new feature-selection layer (Eq. 1).
    if (stage_train.lambda > 0.0) {
      Var w1 = tape->Param(&net.FirstLayerWeight());
      loss = Add(loss, ScalarMul(ElasticNetPenalty(w1), stage_train.lambda));
    }
    // Fault-injection hook: a NaN summand poisons the loss and, through
    // Backward, every gradient — the same signature as a genuine numerical
    // blow-up. TrainLoop's finite-loss guard converts it into a typed
    // NumericalError before the optimizer steps.
    if (CERL_FAULT_POINT(FaultPoint::kNanGradient)) {
      loss = Add(loss, tape->Constant(linalg::Matrix(
                           1, 1, std::numeric_limits<double>::quiet_NaN())));
    }
    return loss;
  };

  train::TrainLoop loop(
      causal::MakeLoopOptions(stage_train,
                              "cerl stage " + std::to_string(ctx->stage)),
      ctx->params, &loop_rng);
  // Tape pooling follows the new-data treated/control split (the memory
  // split is drawn inside the loss and cannot be keyed ahead of time; its
  // few shape-varying nodes re-record in place).
  loop.SetBatchShapeKey([&train](train::IndexSpan idx) {
    return causal::TreatedSplitShapeKey(train.t, idx);
  });
  if (stage_train.async_validation) {
    std::vector<autodiff::Parameter*> valid_params =
        ctx->valid_net->Parameters();
    if (config_.use_transform || config_.delta > 0.0) {
      for (autodiff::Parameter* p : ctx->valid_phi->Parameters()) {
        valid_params.push_back(p);
      }
    }
    loop.EnableAsyncValidation(
        [this, ctx, valid_params](
            const std::vector<linalg::Matrix>& snapshot) {
          train::RestoreValues(valid_params, snapshot);
          return StageValidLoss(ctx->valid_net.get(), ctx->valid_phi.get(),
                                *ctx);
        });
  }
  return loop.Run(train.num_units(), {&ctx->x_train, &ctx->old_reps_train},
                  batch_loss, valid_loss_fn);
}

void CerlTrainer::MigrateStage(StageContext* ctx) {
  CERL_CHECK(ctx != nullptr);
  if (ctx->baseline) {
    SeedMemoryFromCurrent(ctx->split->train);
    CERL_LOG(Debug) << "CERL baseline stage done: memory " << memory_.size()
                    << " units, best valid loss "
                    << ctx->stats.best_valid_loss;
    return;
  }
  // Memory migration: M_d = Herding({R_d, Y_d, T_d} ∪ phi(M_{d-1})).
  if (config_.use_transform) {
    TransformNet* phi = ctx->phi.get();
    memory_.Transform(
        [phi](const linalg::Matrix& reps) { return phi->Apply(reps); });
    const linalg::Matrix new_reps =
        model_->net().Representations(ctx->split->train.x);
    memory_.Append(new_reps, ctx->split->train.y, ctx->split->train.t);
    memory_.Reduce(config_.memory_capacity, config_.use_herding, &rng_);
  }
  CERL_LOG(Debug) << "CERL stage " << ctx->stage << " done: memory "
                  << memory_.size() << " units, best valid loss "
                  << ctx->stats.best_valid_loss;
}

}  // namespace cerl::core
