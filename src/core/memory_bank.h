// The CERL memory M_d (§III-A2): a bounded set of *feature representations*
// with their observed outcomes and treatments — never raw covariates. After
// each continual stage the bank is transformed into the new representation
// space (phi) and reduced back to capacity with herding, balanced across
// treatment groups:
//   M_d = Herding({R_d, Y_d, T_d} ∪ phi_{d-1->d}(M_{d-1})).
//
// Concurrency contract (stream engine): the mutating operations (Append,
// Transform, Reduce, Clear) lock an internal mutex, so stage-completion
// tasks finishing on different pool workers are safe against each other and
// publish their writes. Readers are deliberately lock-free: a stream's
// stage pipeline (TaskGroup) guarantees no mutator runs while the bank is
// being read (training-time SampleBatch/reps), and cross-stream access
// never shares a bank — each stream owns its own.
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace cerl::core {

/// Bounded store of (representation, outcome, treatment) triples.
class MemoryBank {
 public:
  MemoryBank() = default;
  MemoryBank(const MemoryBank&) = delete;
  MemoryBank& operator=(const MemoryBank&) = delete;

  /// Appends units (reps rows aligned with y and t).
  void Append(const linalg::Matrix& reps, const linalg::Vector& y,
              const std::vector<int>& t);

  /// Maps all stored representations through `f` (the trained phi).
  void Transform(
      const std::function<linalg::Matrix(const linalg::Matrix&)>& f);

  /// Shrinks to at most `capacity` units, selecting the same number per
  /// treatment group (paper §III-A2). `use_herding` selects by greedy mean
  /// matching; otherwise random subsampling (the w/o-herding ablation).
  void Reduce(int capacity, bool use_herding, Rng* rng);

  /// Drops every stored unit (checkpoint restore starts from empty).
  void Clear();

  bool empty() const { return y_.empty(); }
  int size() const { return static_cast<int>(y_.size()); }
  int num_treated() const;
  int rep_dim() const { return reps_.cols(); }

  const linalg::Matrix& reps() const { return reps_; }
  const linalg::Vector& y() const { return y_; }
  const std::vector<int>& t() const { return t_; }

  /// Uniform-with-replacement batch of indices.
  std::vector<int> SampleBatch(int batch_size, Rng* rng) const;

 private:
  // Serializes mutators (see the concurrency contract above). Reads during
  // training are protected by per-stream stage serialization instead.
  std::mutex mutate_mutex_;
  linalg::Matrix reps_;
  linalg::Vector y_;
  std::vector<int> t_;
};

}  // namespace cerl::core
