#include "core/transform_net.h"

namespace cerl::core {

TransformNet::TransformNet(Rng* rng, int rep_dim, std::vector<int> hidden)
    : rep_dim_(rep_dim) {
  nn::MlpConfig config;
  config.dims.push_back(rep_dim);
  for (int h : hidden) config.dims.push_back(h);
  config.dims.push_back(rep_dim);
  config.hidden_activation = nn::Activation::kElu;
  config.output_activation = nn::Activation::kTanh;
  net_ = std::make_unique<nn::Mlp>(rng, config, "phi");
  if (hidden.empty()) {
    // Identity initialization: at the start of a continual stage the new
    // representation space coincides with the old one (warm start), so phi
    // must start as (approximately) the identity. A random phi would let
    // the replay loss fit old outcomes at arbitrary representation
    // locations during the first epochs, polluting the outcome heads.
    Parameter& w = net_->FirstLayerWeight();
    w.value.Fill(0.0);
    for (int i = 0; i < rep_dim; ++i) w.value(i, i) = 1.0;
  }
}

Var TransformNet::Forward(Tape* tape, Var rep) {
  return net_->Forward(tape, rep);
}

linalg::Matrix TransformNet::Apply(const linalg::Matrix& reps) {
  Tape tape;
  return Forward(&tape, tape.Constant(reps)).value();
}

std::vector<Parameter*> TransformNet::Parameters() {
  return net_->Parameters();
}

}  // namespace cerl::core
