#include "core/memory_bank.h"

#include <numeric>

#include "causal/herding.h"
#include "util/check.h"

namespace cerl::core {

void MemoryBank::Append(const linalg::Matrix& reps, const linalg::Vector& y,
                        const std::vector<int>& t) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  const int n = reps.rows();
  CERL_CHECK_EQ(static_cast<int>(y.size()), n);
  CERL_CHECK_EQ(static_cast<int>(t.size()), n);
  if (empty()) {
    reps_ = reps;
    y_ = y;
    t_ = t;
    return;
  }
  CERL_CHECK_EQ(reps.cols(), reps_.cols());
  linalg::Matrix merged(reps_.rows() + n, reps_.cols());
  for (int r = 0; r < reps_.rows(); ++r) {
    std::copy(reps_.row(r), reps_.row(r) + reps_.cols(), merged.row(r));
  }
  for (int r = 0; r < n; ++r) {
    std::copy(reps.row(r), reps.row(r) + reps.cols(),
              merged.row(reps_.rows() + r));
  }
  reps_ = std::move(merged);
  y_.insert(y_.end(), y.begin(), y.end());
  t_.insert(t_.end(), t.begin(), t.end());
}

void MemoryBank::Transform(
    const std::function<linalg::Matrix(const linalg::Matrix&)>& f) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  if (empty()) return;
  linalg::Matrix mapped = f(reps_);
  CERL_CHECK_EQ(mapped.rows(), reps_.rows());
  reps_ = std::move(mapped);
}

int MemoryBank::num_treated() const {
  return static_cast<int>(std::accumulate(t_.begin(), t_.end(), 0));
}

void MemoryBank::Clear() {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  reps_ = linalg::Matrix();
  y_.clear();
  t_.clear();
}

void MemoryBank::Reduce(int capacity, bool use_herding, Rng* rng) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  CERL_CHECK_GE(capacity, 0);
  if (size() <= capacity) return;

  std::vector<int> treated_idx, control_idx;
  for (int i = 0; i < size(); ++i) {
    (t_[i] == 1 ? treated_idx : control_idx).push_back(i);
  }
  // Same number per group, clamped by group availability; leftover budget
  // goes to the larger group so capacity is not wasted.
  int per_group = capacity / 2;
  int take_t = std::min<int>(per_group, treated_idx.size());
  int take_c = std::min<int>(per_group, control_idx.size());
  int leftover = capacity - take_t - take_c;
  if (leftover > 0) {
    const int extra_t = std::min<int>(
        leftover, static_cast<int>(treated_idx.size()) - take_t);
    take_t += extra_t;
    leftover -= extra_t;
    take_c += std::min<int>(leftover,
                            static_cast<int>(control_idx.size()) - take_c);
  }

  auto select = [&](const std::vector<int>& group, int count) {
    std::vector<int> chosen;
    if (count <= 0 || group.empty()) return chosen;
    if (use_herding) {
      const linalg::Matrix group_reps = reps_.GatherRows(group);
      for (int local : causal::HerdingSelect(group_reps, count)) {
        chosen.push_back(group[local]);
      }
    } else {
      for (int local :
           causal::RandomSelect(static_cast<int>(group.size()), count, rng)) {
        chosen.push_back(group[local]);
      }
    }
    return chosen;
  };

  std::vector<int> keep = select(treated_idx, take_t);
  for (int i : select(control_idx, take_c)) keep.push_back(i);

  linalg::Matrix new_reps = reps_.GatherRows(keep);
  linalg::Vector new_y;
  std::vector<int> new_t;
  new_y.reserve(keep.size());
  new_t.reserve(keep.size());
  for (int i : keep) {
    new_y.push_back(y_[i]);
    new_t.push_back(t_[i]);
  }
  reps_ = std::move(new_reps);
  y_ = std::move(new_y);
  t_ = std::move(new_t);
}

std::vector<int> MemoryBank::SampleBatch(int batch_size, Rng* rng) const {
  CERL_CHECK(!empty());
  std::vector<int> idx(batch_size);
  for (int& v : idx) v = static_cast<int>(rng->UniformInt(size()));
  return idx;
}

}  // namespace cerl::core
