// Page-granular storage substrate shared by the DiskManager (single-file
// page allocator), the BufferPool (pinned/LRU page cache), and the
// TenantStore (blob chains over pages).
//
// Page 0 of every store file is the superblock; data pages start at 1, so
// PageId 0 doubles as the null/invalid id and zero-initialized next-page
// links terminate chains naturally.
#pragma once

#include <cstdint>

namespace cerl {
namespace storage {

using PageId = uint32_t;

/// Page 0 is the superblock and is never handed out by the allocator, so 0
/// is the null page id (end-of-chain marker, "no page").
inline constexpr PageId kInvalidPageId = 0;

/// Fixed page size. 4 KiB matches the common filesystem block size, so a
/// page write is one block write.
inline constexpr uint32_t kPageSize = 4096;

}  // namespace storage
}  // namespace cerl
