// Single-file page store: a flat file of kPageSize pages with a superblock
// at page 0 and a free list threaded through freed pages.
//
// File layout:
//
//   page 0 (superblock):
//     offset  size  field
//     0       8     magic "CERLSTO1"
//     8       4     page_count   (total pages in the file, incl. superblock)
//     12      4     free_head    (PageId of first free page; 0 = none)
//     16      4     free_count   (number of pages on the free list)
//   page i >= 1: raw page bytes (DiskManager does not interpret them,
//     except that a page on the free list stores the next free PageId in
//     its first 4 bytes).
//
// The store is a spill target, not a durability source: engine durability
// is snapshot + WAL, and spilled tenant state is reconstructed from those
// after a crash. The superblock is therefore rewritten on Flush()/close
// rather than on every allocation.
//
// Thread safety: all methods are safe to call concurrently (one internal
// mutex; page reads/writes use positional pread/pwrite on a shared fd).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "storage/page.h"
#include "util/status.h"

namespace cerl {
namespace storage {

class DiskManager {
 public:
  /// Opens (or creates) the store file at `path`. An existing file must
  /// carry a valid superblock; a malformed one is a clean IoError.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path);

  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a page: pops the free list if non-empty, otherwise grows the
  /// file by one page. The page's on-disk contents are unspecified until
  /// the first WritePage.
  Result<PageId> AllocatePage();

  /// Returns a page to the free list. Freeing the superblock, an
  /// out-of-range page, or kInvalidPageId is an InvalidArgument error.
  Status FreePage(PageId id);

  /// Reads/writes one full page. `buf` must hold kPageSize bytes.
  Status ReadPage(PageId id, char* buf);
  Status WritePage(PageId id, const char* buf);

  /// Rewrites the superblock so page_count/free_head survive reopen.
  Status Flush();

  /// Total pages in the file, including the superblock.
  uint32_t page_count() const;
  /// Pages currently on the free list.
  uint32_t free_pages() const;
  const std::string& path() const { return path_; }

 private:
  DiskManager(std::string path, int fd);

  Status CheckDataPageLocked(PageId id, const char* op) const;
  Status WriteSuperblockLocked();
  Status ReadPageLocked(PageId id, char* buf);
  Status WritePageLocked(PageId id, const char* buf);

  const std::string path_;
  int fd_;

  mutable std::mutex mutex_;
  uint32_t page_count_ = 1;           // superblock
  PageId free_head_ = kInvalidPageId;
  uint32_t free_count_ = 0;
};

}  // namespace storage
}  // namespace cerl
