// Fixed-capacity page cache over a DiskManager: a frame table with pin
// counts and LRU eviction.
//
// Access model: Fetch()/Create() return a PageHandle that pins the page in
// its frame; the pin is released when the handle is destroyed. A pinned
// page is never evicted, so the handle's data pointer stays valid for the
// handle's lifetime. Eviction picks the least-recently-unpinned clean-or-
// dirty frame (dirty pages are written back first); if every frame is
// pinned, Fetch/Create fail with ResourceExhausted instead of blocking.
//
// Thread safety: the pool's bookkeeping is mutex-guarded and handles may be
// created/destroyed from any thread, but the bytes of ONE page are not
// internally synchronized — callers must not write a page concurrently
// with other access to the same page (the engine serializes per-tenant
// access via its TaskGroups).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace cerl {
namespace storage {

class BufferPool;

/// RAII pin on a page frame. Movable, not copyable; unpins on destruction.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the page dirty so eviction/FlushAll writes it back.
  void MarkDirty();

  /// Releases the pin early (the handle becomes invalid).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId id, char* data)
      : pool_(pool), frame_(frame), id_(id), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
};

class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;        // Fetch served from a resident frame
    uint64_t misses = 0;      // Fetch that had to read from disk
    uint64_t evictions = 0;   // frames recycled to make room
    uint64_t writebacks = 0;  // dirty pages written to disk
  };

  /// `disk` must outlive the pool. `num_frames` >= 1.
  BufferPool(DiskManager* disk, size_t num_frames);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page from the DiskManager and pins it, zero-filled
  /// and marked dirty.
  Result<PageHandle> Create();

  /// Writes back every dirty frame (pages stay cached).
  Status FlushAll();

  /// Drops page `id` from the cache WITHOUT write-back. Precondition: the
  /// page is unpinned. Callers use this immediately before FreePage so a
  /// stale cached image cannot resurface if the page id is re-allocated.
  void Discard(PageId id);

  size_t num_frames() const { return frames_.size(); }
  DiskManager* disk() const { return disk_; }
  Stats stats() const;

 private:
  friend class PageHandle;

  struct Frame {
    PageId id = kInvalidPageId;  // kInvalidPageId = frame empty
    int pins = 0;
    bool dirty = false;
    uint64_t last_used = 0;  // LRU tick, updated on unpin
    std::unique_ptr<char[]> data;
  };

  /// Finds the frame holding `id`, or SIZE_MAX.
  size_t FindFrameLocked(PageId id) const;
  /// Returns an empty frame, evicting if needed.
  Result<size_t> ReserveFrameLocked();
  void Unpin(size_t frame);

  DiskManager* const disk_;
  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
  uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace storage
}  // namespace cerl
