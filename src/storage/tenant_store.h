// Blob store over the page layer: maps a tenant key to a chain of pages
// holding one serialized state blob (the engine stores CERLCKP1 trainer
// checkpoints here when a tenant is spilled).
//
// Chain layout (all pages):
//   offset  size  field
//   0       4     next PageId (0 = last page of the chain)
//   head page only, after next:
//   4       8     blob size in bytes
//   12      8     FNV-1a checksum of the blob
//   then payload bytes fill the rest of each page.
//
// The key -> (head page, size) catalog lives in memory only: the store is
// a RAM-extension spill target, and after a crash tenant state is rebuilt
// from snapshot + WAL, repopulating the store organically as tenants go
// cold again.
//
// Thread safety: all operations are serialized on one internal mutex, so
// the store is safe for concurrent use from any thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "storage/buffer_pool.h"
#include "util/status.h"

namespace cerl {
namespace storage {

class TenantStore {
 public:
  /// `pool` must outlive the store.
  explicit TenantStore(BufferPool* pool) : pool_(pool) {}

  /// Stores `blob` under `key`, replacing any previous blob (whose pages
  /// are freed). On failure the old blob is gone and `key` is absent.
  Status Put(int64_t key, std::string_view blob);

  /// Reads back the blob stored under `key`. Verifies the stored checksum:
  /// a corrupted chain is a clean IoError, never garbage bytes.
  Result<std::string> Get(int64_t key) const;

  /// Frees the chain under `key`. Missing keys are NotFound.
  Status Erase(int64_t key);

  bool Contains(int64_t key) const;
  size_t num_blobs() const;
  /// Sum of stored blob sizes (payload bytes, not page overhead).
  uint64_t stored_bytes() const;

 private:
  struct Entry {
    PageId head = kInvalidPageId;
    uint64_t size = 0;
  };

  Status FreeChainLocked(PageId head);

  BufferPool* const pool_;
  mutable std::mutex mutex_;
  std::unordered_map<int64_t, Entry> catalog_;
  uint64_t stored_bytes_ = 0;
};

}  // namespace storage
}  // namespace cerl
