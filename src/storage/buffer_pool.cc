#include "storage/buffer_pool.h"

#include <cstring>

#include "util/check.h"

namespace cerl {
namespace storage {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  if (!pool_) return;
  std::lock_guard<std::mutex> lock(pool_->mutex_);
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (!pool_) return;
  pool_->Unpin(frame_);
  pool_ = nullptr;
  data_ = nullptr;
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames) : disk_(disk) {
  CERL_CHECK_MSG(num_frames >= 1, "buffer pool needs at least one frame");
  frames_.resize(num_frames);
}

BufferPool::~BufferPool() {
  // Best effort: spilled state is reconstructible from snapshot + WAL.
  (void)FlushAll();
}

size_t BufferPool::FindFrameLocked(PageId id) const {
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].id == id) return i;
  }
  return static_cast<size_t>(-1);
}

Result<size_t> BufferPool::ReserveFrameLocked() {
  // First an empty frame, else the unpinned frame least recently unpinned.
  size_t victim = static_cast<size_t>(-1);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.id == kInvalidPageId) {
      if (!f.data) f.data = std::make_unique<char[]>(kPageSize);
      return i;
    }
    if (f.pins == 0 &&
        (victim == static_cast<size_t>(-1) ||
         f.last_used < frames_[victim].last_used)) {
      victim = i;
    }
  }
  if (victim == static_cast<size_t>(-1)) {
    return Status::ResourceExhausted(
        "buffer pool: all " + std::to_string(frames_.size()) +
        " frames are pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    CERL_RETURN_IF_ERROR(disk_->WritePage(f.id, f.data.get()));
    ++stats_.writebacks;
    f.dirty = false;
  }
  f.id = kInvalidPageId;
  ++stats_.evictions;
  return victim;
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t i = FindFrameLocked(id);
  if (i != static_cast<size_t>(-1)) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    auto reserved = ReserveFrameLocked();
    CERL_RETURN_IF_ERROR(reserved.status());
    i = reserved.value();
    CERL_RETURN_IF_ERROR(disk_->ReadPage(id, frames_[i].data.get()));
    frames_[i].id = id;
    frames_[i].dirty = false;
  }
  Frame& f = frames_[i];
  ++f.pins;
  return PageHandle(this, i, id, f.data.get());
}

Result<PageHandle> BufferPool::Create() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto reserved = ReserveFrameLocked();
  CERL_RETURN_IF_ERROR(reserved.status());
  const size_t i = reserved.value();
  auto id = disk_->AllocatePage();
  CERL_RETURN_IF_ERROR(id.status());
  Frame& f = frames_[i];
  std::memset(f.data.get(), 0, kPageSize);
  f.id = id.value();
  f.dirty = true;
  ++f.pins;
  return PageHandle(this, i, id.value(), f.data.get());
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& f : frames_) {
    if (f.id == kInvalidPageId || !f.dirty) continue;
    CERL_RETURN_IF_ERROR(disk_->WritePage(f.id, f.data.get()));
    ++stats_.writebacks;
    f.dirty = false;
  }
  return Status::Ok();
}

void BufferPool::Discard(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t i = FindFrameLocked(id);
  if (i == static_cast<size_t>(-1)) return;
  CERL_CHECK_MSG(frames_[i].pins == 0, "Discard of a pinned page");
  frames_[i].id = kInvalidPageId;
  frames_[i].dirty = false;
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[frame];
  CERL_CHECK_MSG(f.pins > 0, "unpin of an unpinned frame");
  --f.pins;
  f.last_used = ++tick_;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace storage
}  // namespace cerl
