// Write-ahead log: an append-only file of checksummed records, one per
// accepted mutation (the engine logs stream creation and every accepted
// domain). Recovery = replay the longest valid prefix into a fresh engine.
//
// Record wire format (little-endian):
//   offset  size  field
//   0       4     payload_len
//   4       4     type (caller-defined tag)
//   8       8     FNV-1a checksum of bytes [0, 8) + payload
//   16      len   payload
//
// Open() scans the existing file record by record and stops at the first
// record that is short, oversized, or fails its checksum — the signature
// of a crash mid-append (torn tail) or of on-disk corruption. Everything
// before that point is recovered; the file is truncated to the valid
// prefix so subsequent appends continue from a clean boundary.
//
// Durability contract: Append() returns after the write() syscall
// completes, which survives process death. Surviving machine/power failure
// requires fsync_each_append=true (one fsync per accepted record).
//
// Thread safety: Append/Compact/size accessors are mutex-serialized.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cerl {
namespace storage {

class Wal {
 public:
  struct Record {
    uint32_t type = 0;
    std::string payload;
  };

  struct Options {
    /// fsync after every append (machine-crash durability) vs write()-only
    /// (process-crash durability, much cheaper).
    bool fsync_each_append = false;
  };

  /// Opens (or creates) the log at `path`, recovering the valid record
  /// prefix and truncating any torn tail.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           const Options& options);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Records recovered by Open() (in log order). Stable for the Wal's
  /// lifetime; replay consumes this once after Open.
  const std::vector<Record>& recovered() const { return recovered_; }
  /// Bytes dropped by torn-tail truncation at Open (0 = clean log).
  uint64_t truncated_bytes() const { return truncated_bytes_; }

  /// Appends one record. On any failure the file is restored to its
  /// pre-append length: a record is either fully logged or not at all.
  Status Append(uint32_t type, std::string_view payload);

  /// Atomically replaces the log's contents with `keep` (crash-safe:
  /// temp file + rename). Used after a successful snapshot to drop
  /// records the snapshot subsumes.
  Status Compact(const std::vector<Record>& keep);

  uint64_t size_bytes() const;
  uint64_t appended_records() const;
  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, Options options);

  static std::string EncodeRecord(uint32_t type, std::string_view payload);

  const std::string path_;
  const Options options_;
  std::vector<Record> recovered_;
  uint64_t truncated_bytes_ = 0;

  mutable std::mutex mutex_;
  int fd_ = -1;
  uint64_t size_bytes_ = 0;
  uint64_t appended_records_ = 0;
};

}  // namespace storage
}  // namespace cerl
