#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "util/binary_io.h"
#include "util/fault_injection.h"

namespace cerl {
namespace storage {
namespace {

constexpr size_t kHeaderBytes = 16;
// A single WAL payload is one domain's serialized splits; 1 GiB is far
// beyond any real record and caps what a corrupted length field can make
// the scanner allocate.
constexpr uint32_t kMaxPayload = 1u << 30;

uint64_t RecordChecksum(const char* header8, std::string_view payload) {
  // Checksum covers len + type (the first 8 header bytes) and the payload,
  // so a flip in any of the three is detected.
  uint64_t hash = 0xCBF29CE484222325ull;
  const auto mix = [&hash](const char* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      hash ^= static_cast<unsigned char>(p[i]);
      hash *= 0x100000001B3ull;
    }
  };
  mix(header8, 8);
  mix(payload.data(), payload.size());
  return hash;
}

}  // namespace

Wal::Wal(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Wal::EncodeRecord(uint32_t type, std::string_view payload) {
  std::string bytes;
  bytes.reserve(kHeaderBytes + payload.size());
  const auto len = static_cast<uint32_t>(payload.size());
  WritePod(&bytes, len);
  WritePod(&bytes, type);
  const uint64_t checksum = RecordChecksum(bytes.data(), payload);
  WritePod(&bytes, checksum);
  if (!payload.empty()) bytes.append(payload.data(), payload.size());
  return bytes;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       const Options& options) {
  std::unique_ptr<Wal> wal(new Wal(path, options));

  // Scan whatever is on disk for the valid record prefix.
  std::string contents;
  {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      ::close(fd);
      auto read = ReadFileToString(path);
      CERL_RETURN_IF_ERROR(read.status());
      contents = std::move(read).value();
    }
    // A missing file is simply an empty log.
  }
  size_t valid_end = 0;
  while (contents.size() - valid_end >= kHeaderBytes) {
    const char* header = contents.data() + valid_end;
    uint32_t len = 0, type = 0;
    uint64_t stored = 0;
    std::memcpy(&len, header, sizeof(len));
    std::memcpy(&type, header + 4, sizeof(type));
    std::memcpy(&stored, header + 8, sizeof(stored));
    if (len > kMaxPayload ||
        static_cast<uint64_t>(len) + kHeaderBytes >
            contents.size() - valid_end) {
      break;  // torn or corrupt length
    }
    const std::string_view payload(contents.data() + valid_end + kHeaderBytes,
                                   len);
    if (RecordChecksum(header, payload) != stored) break;
    Record r;
    r.type = type;
    r.payload.assign(payload.data(), payload.size());
    wal->recovered_.push_back(std::move(r));
    valid_end += kHeaderBytes + len;
  }
  wal->truncated_bytes_ = contents.size() - valid_end;

  wal->fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (wal->fd_ < 0) return Status::IoError("cannot open WAL: " + path);
  if (wal->truncated_bytes_ > 0) {
    if (::ftruncate(wal->fd_, static_cast<off_t>(valid_end)) != 0) {
      return Status::IoError("cannot truncate torn WAL tail: " + path);
    }
  }
  if (::lseek(wal->fd_, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    return Status::IoError("cannot seek WAL: " + path);
  }
  wal->size_bytes_ = valid_end;
  return wal;
}

Status Wal::Append(uint32_t type, std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("WAL record payload too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (CERL_FAULT_POINT(FaultPoint::kIoWrite)) {
    return Status::IoError("injected WAL append failure: " + path_);
  }
  const std::string bytes = EncodeRecord(type, payload);
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t rc = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (rc < 0) {
      // Restore the pre-append length so a half-written record never
      // becomes a parseable-looking tail.
      (void)::ftruncate(fd_, static_cast<off_t>(size_bytes_));
      (void)::lseek(fd_, static_cast<off_t>(size_bytes_), SEEK_SET);
      return Status::IoError("WAL append failed: " + path_);
    }
    done += static_cast<size_t>(rc);
  }
  if (options_.fsync_each_append && ::fsync(fd_) != 0) {
    (void)::ftruncate(fd_, static_cast<off_t>(size_bytes_));
    (void)::lseek(fd_, static_cast<off_t>(size_bytes_), SEEK_SET);
    return Status::IoError("WAL fsync failed: " + path_);
  }
  size_bytes_ += bytes.size();
  ++appended_records_;
  return Status::Ok();
}

Status Wal::Compact(const std::vector<Record>& keep) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string contents;
  for (const Record& r : keep) {
    contents += EncodeRecord(r.type, r.payload);
  }
  // WriteFileAtomic publishes the compacted log or leaves the old one —
  // never a torn intermediate — then the fd is repointed at the new file.
  CERL_RETURN_IF_ERROR(WriteFileAtomic(path_, contents));
  const int fd = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot reopen WAL after compaction: " + path_);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::IoError("cannot seek WAL after compaction: " + path_);
  }
  ::close(fd_);
  fd_ = fd;
  size_bytes_ = contents.size();
  return Status::Ok();
}

uint64_t Wal::size_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_bytes_;
}

uint64_t Wal::appended_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_records_;
}

}  // namespace storage
}  // namespace cerl
