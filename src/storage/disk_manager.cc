#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "util/fault_injection.h"

namespace cerl {
namespace storage {
namespace {

constexpr char kMagic[8] = {'C', 'E', 'R', 'L', 'S', 'T', 'O', '1'};

// Guard against a corrupt superblock driving page_count to something that
// implies a multi-terabyte file: 2^22 pages * 4 KiB = 16 GiB.
constexpr uint32_t kMaxPages = 1u << 22;

Status PreadFull(int fd, char* buf, size_t n, off_t offset,
                 const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::pread(fd, buf + done, n - done,
                               offset + static_cast<off_t>(done));
    if (rc < 0) return Status::IoError("pread failed: " + path);
    if (rc == 0) return Status::IoError("short pread (truncated): " + path);
    done += static_cast<size_t>(rc);
  }
  return Status::Ok();
}

Status PwriteFull(int fd, const char* buf, size_t n, off_t offset,
                  const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::pwrite(fd, buf + done, n - done,
                                offset + static_cast<off_t>(done));
    if (rc < 0) return Status::IoError("pwrite failed: " + path);
    done += static_cast<size_t>(rc);
  }
  return Status::Ok();
}

}  // namespace

DiskManager::DiskManager(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    // Best effort: a spill store that loses its superblock on close is
    // rebuilt from snapshot + WAL, not a durability hole.
    (void)WriteSuperblockLocked();
    ::close(fd_);
  }
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError("cannot open page store: " + path);
  std::unique_ptr<DiskManager> dm(new DiskManager(path, fd));

  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    return Status::IoError("cannot size page store: " + path);
  }
  if (size == 0) {
    // Fresh store: write the initial superblock.
    CERL_RETURN_IF_ERROR(dm->WriteSuperblockLocked());
    return dm;
  }
  if (size < static_cast<off_t>(kPageSize) || size % kPageSize != 0) {
    return Status::IoError("page store is not page-aligned: " + path);
  }
  char super[kPageSize];
  CERL_RETURN_IF_ERROR(PreadFull(fd, super, kPageSize, 0, path));
  if (std::memcmp(super, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("page store has bad magic: " + path);
  }
  uint32_t page_count = 0, free_head = 0, free_count = 0;
  std::memcpy(&page_count, super + 8, sizeof(page_count));
  std::memcpy(&free_head, super + 12, sizeof(free_head));
  std::memcpy(&free_count, super + 16, sizeof(free_count));
  const auto file_pages = static_cast<uint64_t>(size) / kPageSize;
  if (page_count == 0 || page_count > kMaxPages ||
      page_count > file_pages || free_head >= page_count ||
      free_count >= page_count) {
    return Status::IoError("page store superblock is corrupt: " + path);
  }
  dm->page_count_ = page_count;
  dm->free_head_ = free_head;
  dm->free_count_ = free_count;
  return dm;
}

Status DiskManager::CheckDataPageLocked(PageId id, const char* op) const {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument(std::string(op) + " of page " +
                                   std::to_string(id) +
                                   " outside store of " +
                                   std::to_string(page_count_) + " pages");
  }
  return Status::Ok();
}

Status DiskManager::WriteSuperblockLocked() {
  char super[kPageSize];
  std::memset(super, 0, sizeof(super));
  std::memcpy(super, kMagic, sizeof(kMagic));
  std::memcpy(super + 8, &page_count_, sizeof(page_count_));
  std::memcpy(super + 12, &free_head_, sizeof(free_head_));
  std::memcpy(super + 16, &free_count_, sizeof(free_count_));
  return PwriteFull(fd_, super, kPageSize, 0, path_);
}

Status DiskManager::ReadPageLocked(PageId id, char* buf) {
  CERL_RETURN_IF_ERROR(CheckDataPageLocked(id, "read"));
  return PreadFull(fd_, buf, kPageSize,
                   static_cast<off_t>(id) * kPageSize, path_);
}

Status DiskManager::WritePageLocked(PageId id, const char* buf) {
  if (CERL_FAULT_POINT(FaultPoint::kIoWrite)) {
    return Status::IoError("injected page write failure: " + path_);
  }
  CERL_RETURN_IF_ERROR(CheckDataPageLocked(id, "write"));
  return PwriteFull(fd_, buf, kPageSize,
                    static_cast<off_t>(id) * kPageSize, path_);
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_head_ != kInvalidPageId) {
    const PageId id = free_head_;
    char page[kPageSize];
    CERL_RETURN_IF_ERROR(ReadPageLocked(id, page));
    PageId next = kInvalidPageId;
    std::memcpy(&next, page, sizeof(next));
    if (next != kInvalidPageId && next >= page_count_) {
      return Status::IoError("page store free list is corrupt: " + path_);
    }
    free_head_ = next;
    --free_count_;
    return id;
  }
  if (page_count_ >= kMaxPages) {
    return Status::ResourceExhausted("page store is full: " + path_);
  }
  const PageId id = page_count_;
  // Extend the file so the new page is addressable by pread before its
  // first write-back.
  char zero[kPageSize];
  std::memset(zero, 0, sizeof(zero));
  CERL_RETURN_IF_ERROR(PwriteFull(fd_, zero, kPageSize,
                                  static_cast<off_t>(id) * kPageSize, path_));
  ++page_count_;
  return id;
}

Status DiskManager::FreePage(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  CERL_RETURN_IF_ERROR(CheckDataPageLocked(id, "free"));
  char page[kPageSize];
  std::memset(page, 0, sizeof(page));
  std::memcpy(page, &free_head_, sizeof(free_head_));
  CERL_RETURN_IF_ERROR(WritePageLocked(id, page));
  free_head_ = id;
  ++free_count_;
  return Status::Ok();
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ReadPageLocked(id, buf);
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  std::lock_guard<std::mutex> lock(mutex_);
  return WritePageLocked(id, buf);
}

Status DiskManager::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return WriteSuperblockLocked();
}

uint32_t DiskManager::page_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return page_count_;
}

uint32_t DiskManager::free_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_count_;
}

}  // namespace storage
}  // namespace cerl
