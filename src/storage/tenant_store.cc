#include "storage/tenant_store.h"

#include <cstring>
#include <vector>

#include "util/binary_io.h"

namespace cerl {
namespace storage {
namespace {

constexpr uint32_t kNextBytes = 4;                 // every page
constexpr uint32_t kHeadHeaderBytes = 4 + 8 + 8;   // next + size + checksum
constexpr uint32_t kHeadCapacity = kPageSize - kHeadHeaderBytes;
constexpr uint32_t kTailCapacity = kPageSize - kNextBytes;

}  // namespace

Status TenantStore::FreeChainLocked(PageId head) {
  DiskManager* disk = pool_->disk();
  PageId id = head;
  while (id != kInvalidPageId) {
    PageId next = kInvalidPageId;
    {
      auto page = pool_->Fetch(id);
      CERL_RETURN_IF_ERROR(page.status());
      std::memcpy(&next, page.value().data(), sizeof(next));
    }
    pool_->Discard(id);
    CERL_RETURN_IF_ERROR(disk->FreePage(id));
    id = next;
  }
  return Status::Ok();
}

Status TenantStore::Put(int64_t key, std::string_view blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Replace semantics: drop the old chain first so its pages are reusable
  // for the new one (a tenant's new blob is usually the same size).
  auto it = catalog_.find(key);
  if (it != catalog_.end()) {
    stored_bytes_ -= it->second.size;
    const PageId old_head = it->second.head;
    catalog_.erase(it);
    CERL_RETURN_IF_ERROR(FreeChainLocked(old_head));
  }

  // Allocate and fill the chain front-to-back; each page is linked to its
  // successor after the successor exists, so a mid-Put failure leaks no
  // dangling next pointers into live chains (the partial chain is freed).
  const uint64_t checksum = Fnv1a64(blob);
  std::vector<PageId> pages;
  Status status = Status::Ok();
  size_t off = 0;
  do {
    auto page = pool_->Create();
    status = page.status();
    if (!status.ok()) break;
    PageHandle& h = page.value();
    pages.push_back(h.id());
    char* data = h.data();
    uint32_t header = kNextBytes;
    if (pages.size() == 1) {
      const uint64_t size = blob.size();
      std::memcpy(data + 4, &size, sizeof(size));
      std::memcpy(data + 12, &checksum, sizeof(checksum));
      header = kHeadHeaderBytes;
    }
    const size_t room = kPageSize - header;
    const size_t take = std::min(room, blob.size() - off);
    if (take > 0) std::memcpy(data + header, blob.data() + off, take);
    off += take;
    h.MarkDirty();
  } while (off < blob.size());

  if (status.ok()) {
    // Link the chain (next pointers were zero-initialized by Create).
    for (size_t i = 0; i + 1 < pages.size(); ++i) {
      auto page = pool_->Fetch(pages[i]);
      status = page.status();
      if (!status.ok()) break;
      const PageId next = pages[i + 1];
      std::memcpy(page.value().data(), &next, sizeof(next));
      page.value().MarkDirty();
    }
  }

  if (!status.ok()) {
    DiskManager* disk = pool_->disk();
    for (const PageId id : pages) {
      pool_->Discard(id);
      (void)disk->FreePage(id);
    }
    return status;
  }

  catalog_[key] = Entry{pages.front(), blob.size()};
  stored_bytes_ += blob.size();
  return Status::Ok();
}

Result<std::string> TenantStore::Get(int64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = catalog_.find(key);
  if (it == catalog_.end()) {
    return Status::NotFound("tenant store has no blob for key " +
                            std::to_string(key));
  }
  std::string blob;
  blob.reserve(it->second.size);
  uint64_t declared_size = 0;
  uint64_t checksum = 0;
  PageId id = it->second.head;
  bool first = true;
  // The head page is always visited (it carries size + checksum even for an
  // empty blob); tail pages only while payload bytes remain.
  while (id != kInvalidPageId && (first || blob.size() < it->second.size)) {
    auto page = pool_->Fetch(id);
    CERL_RETURN_IF_ERROR(page.status());
    const char* data = page.value().data();
    PageId next = kInvalidPageId;
    std::memcpy(&next, data, sizeof(next));
    uint32_t header = kNextBytes;
    if (first) {
      std::memcpy(&declared_size, data + 4, sizeof(declared_size));
      std::memcpy(&checksum, data + 12, sizeof(checksum));
      if (declared_size != it->second.size) {
        return Status::IoError("tenant store chain for key " +
                               std::to_string(key) +
                               " has inconsistent size header");
      }
      header = kHeadHeaderBytes;
      first = false;
    }
    const size_t take = std::min<uint64_t>(kPageSize - header,
                                           it->second.size - blob.size());
    blob.append(data + header, take);
    id = next;
  }
  if (blob.size() != it->second.size) {
    return Status::IoError("tenant store chain for key " +
                           std::to_string(key) + " is truncated");
  }
  if (Fnv1a64(blob) != checksum) {
    return Status::IoError("tenant store blob for key " +
                           std::to_string(key) +
                           " failed its checksum (corrupted store)");
  }
  return blob;
}

Status TenantStore::Erase(int64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = catalog_.find(key);
  if (it == catalog_.end()) {
    return Status::NotFound("tenant store has no blob for key " +
                            std::to_string(key));
  }
  const PageId head = it->second.head;
  stored_bytes_ -= it->second.size;
  catalog_.erase(it);
  return FreeChainLocked(head);
}

bool TenantStore::Contains(int64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return catalog_.count(key) != 0;
}

size_t TenantStore::num_blobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return catalog_.size();
}

uint64_t TenantStore::stored_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stored_bytes_;
}

}  // namespace storage
}  // namespace cerl
