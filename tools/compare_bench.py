#!/usr/bin/env python3
"""Bench regression gate: compare a fresh google-benchmark JSON run against
the committed baseline and fail on slowdowns.

Usage:
  tools/compare_bench.py BASELINE.json CURRENT.json [--threshold 1.25]
      [--pair NAME BASE MAXRATIO ...]

Rules:
  - benchmarks present in BOTH files are compared by real_time (after
    normalizing to nanoseconds);
  - any benchmark slower than threshold x baseline fails the gate;
  - benchmarks only in one file are reported but never fail the gate (new
    benches land before their baseline regenerates; retired ones linger in
    old baselines);
  - each --pair NAME BASE MAXRATIO (repeatable) gates WITHIN the current
    run: NAME must not be slower than MAXRATIO x BASE. This pins a feature's
    overhead against its own baseline variant (e.g. the stream engine's
    health guards vs the guards-off run) independent of machine speed;
    a pair whose members are missing from the current run is a hard error —
    a silently skipped overhead gate is worse than a failing one;
  - exit code 0 = pass, 1 = regression, 2 = usage/parse error.

CI runners are noisy; the default 25% threshold is deliberately loose — it
catches "accidentally quadratic", not micro-jitter.
"""

import argparse
import json
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # compare raw iterations, not mean/median/stddev rows
        unit = TIME_UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None:
            print(f"error: unknown time unit in {path}: {bench}",
                  file=sys.stderr)
            sys.exit(2)
        out[bench["name"]] = float(bench["real_time"]) * unit
    if not out:
        print(f"error: no benchmarks found in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail when current > threshold * baseline "
                             "(default 1.25 = 25%% slowdown)")
    parser.add_argument("--pair", nargs=3, action="append", default=[],
                        metavar=("NAME", "BASE", "MAXRATIO"),
                        help="within the CURRENT run, fail when "
                             "NAME > MAXRATIO * BASE (repeatable)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    regressions = []
    print(f"{'benchmark':44s} {'baseline':>12s} {'current':>12s} "
          f"{'ratio':>7s}")
    for name in shared:
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        flag = ""
        if ratio > args.threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        elif ratio < 1.0 / args.threshold:
            flag = "  (faster)"
        print(f"{name:44s} {baseline[name]:10.0f}ns {current[name]:10.0f}ns "
              f"{ratio:6.2f}x{flag}")

    for name in only_current:
        print(f"{name:44s} {'--':>12s} {current[name]:10.0f}ns    new")
    for name in only_baseline:
        print(f"{name:44s} {baseline[name]:10.0f}ns {'--':>12s}    retired")

    pair_failures = []
    for name, base, max_ratio_str in args.pair:
        try:
            max_ratio = float(max_ratio_str)
        except ValueError:
            print(f"error: --pair ratio is not a number: {max_ratio_str}",
                  file=sys.stderr)
            sys.exit(2)
        missing = [n for n in (name, base) if n not in current]
        if missing:
            print(f"error: --pair benchmark(s) missing from current run: "
                  f"{', '.join(missing)}", file=sys.stderr)
            sys.exit(2)
        ratio = current[name] / current[base] if current[base] > 0 else 1.0
        flag = ""
        if ratio > max_ratio:
            pair_failures.append((name, base, ratio, max_ratio))
            flag = "  << OVER BUDGET"
        print(f"pair {name} / {base}: {ratio:.3f}x "
              f"(budget {max_ratio:.2f}x){flag}")

    print(f"\ncompared {len(shared)} benchmarks "
          f"({len(only_current)} new, {len(only_baseline)} retired), "
          f"threshold {args.threshold:.2f}x, {len(args.pair)} pair gate(s)")
    for name, base, ratio, max_ratio in pair_failures:
        print(f"FAIL: {name} is {ratio:.3f}x of {base} "
              f"(budget {max_ratio:.2f}x)", file=sys.stderr)
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) over "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x slower", file=sys.stderr)
        sys.exit(1)
    if pair_failures:
        sys.exit(1)
    print("PASS: no benchmark regressed past the threshold")


if __name__ == "__main__":
    main()
