#!/usr/bin/env python3
"""Bench regression gate: compare a fresh google-benchmark JSON run against
the committed baseline and fail on slowdowns.

Usage:
  tools/compare_bench.py BASELINE.json CURRENT.json [--threshold 1.25]
      [--gate-counter SUFFIX ...] [--pair NAME BASE MAXRATIO ...]
      [--floor NAME MIN ...]

Rules:
  - benchmarks present in BOTH files are compared by real_time (after
    normalizing to nanoseconds);
  - any benchmark slower than threshold x baseline fails the gate;
  - user counters are addressable as "BENCH#counter" (e.g.
    "BM_LoadSkewedTenants/iterations:5/real_time#ca_p99_ms"). Each
    --gate-counter SUFFIX (repeatable) also applies the
    baseline-vs-current threshold to every counter whose name ends in
    SUFFIX and is present in both files — this is how latency percentiles
    are regression-gated, not just wall time;
  - benchmarks only in one file are reported but never fail the gate (new
    benches land before their baseline regenerates; retired ones linger in
    old baselines);
  - each --pair NAME BASE MAXRATIO (repeatable) gates WITHIN the current
    run: NAME must not be slower than MAXRATIO x BASE, where either side
    may be a "BENCH#counter" entry. This pins a feature's overhead — or a
    scheduler's tail-latency win — against its own baseline variant in the
    same run, independent of machine speed; a pair whose members are
    missing from the current run is a hard error — a silently skipped gate
    is worse than a failing one;
  - each --floor NAME MIN (repeatable) fails when the CURRENT run's NAME
    (typically a "BENCH#counter" rate, e.g. a queries/s counter) is below
    MIN — an absolute performance floor for throughput-style acceptance
    targets; a missing NAME is a hard error, same as --pair;
  - exit code 0 = pass, 1 = regression, 2 = usage/parse error.

CI runners are noisy; the default 25% threshold is deliberately loose — it
catches "accidentally quadratic", not micro-jitter.
"""

import argparse
import json
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# google-benchmark's JSON reporter flattens user counters into the benchmark
# object itself; anything numeric that is not one of these bookkeeping fields
# is a counter.
STANDARD_FIELDS = {
    "real_time", "cpu_time", "iterations", "repetitions",
    "repetition_index", "threads", "family_index",
    "per_family_instance_index",
}


def load_benchmarks(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # compare raw iterations, not mean/median/stddev rows
        unit = TIME_UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None:
            print(f"error: unknown time unit in {path}: {bench}",
                  file=sys.stderr)
            sys.exit(2)
        out[bench["name"]] = float(bench["real_time"]) * unit
        # Counters keep their native unit; they are only ever compared to
        # the same counter (threshold gate) or ratioed (pair gate), so a
        # common unit across entries is unnecessary.
        for key, value in bench.items():
            if key in STANDARD_FIELDS or isinstance(value, (str, bool)):
                continue
            if isinstance(value, (int, float)):
                out[f"{bench['name']}#{key}"] = float(value)
    if not out:
        print(f"error: no benchmarks found in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail when current > threshold * baseline "
                             "(default 1.25 = 25%% slowdown)")
    parser.add_argument("--gate-counter", action="append", default=[],
                        metavar="SUFFIX",
                        help="also threshold-gate '#SUFFIX' counters "
                             "present in both files, e.g. p99_ms "
                             "(repeatable)")
    parser.add_argument("--pair", nargs=3, action="append", default=[],
                        metavar=("NAME", "BASE", "MAXRATIO"),
                        help="within the CURRENT run, fail when "
                             "NAME > MAXRATIO * BASE; either side may be "
                             "a 'BENCH#counter' entry (repeatable)")
    parser.add_argument("--floor", nargs=2, action="append", default=[],
                        metavar=("NAME", "MIN"),
                        help="fail when the current run's NAME (often a "
                             "'BENCH#counter' rate) is below MIN "
                             "(repeatable)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    gated_suffixes = set(args.gate_counter)

    def in_gate(name):
        """real_time rows always; counter rows only when their name ends in
        a gated suffix (most counters — steal counts, throughput — are
        informational, not budgets). Suffix matching lets one flag cover a
        family: --gate-counter p99_ms gates rr_p99_ms and ca_p99_ms."""
        if "#" not in name:
            return True
        counter = name.rsplit("#", 1)[1]
        return any(counter.endswith(s) for s in gated_suffixes)

    shared = sorted(n for n in set(baseline) & set(current) if in_gate(n))
    only_baseline = sorted(
        n for n in set(baseline) - set(current) if in_gate(n))
    only_current = sorted(
        n for n in set(current) - set(baseline) if in_gate(n))

    regressions = []
    print(f"{'benchmark':44s} {'baseline':>12s} {'current':>12s} "
          f"{'ratio':>7s}")
    def fmt(name, value):
        # Counters keep their native unit (the suffix names it: p99_ms).
        return f"{value:10.0f}ns" if "#" not in name else f"{value:12.2f}"

    for name in shared:
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        flag = ""
        if ratio > args.threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        elif ratio < 1.0 / args.threshold:
            flag = "  (faster)"
        print(f"{name:44s} {fmt(name, baseline[name])} "
              f"{fmt(name, current[name])} {ratio:6.2f}x{flag}")

    for name in only_current:
        print(f"{name:44s} {'--':>12s} {fmt(name, current[name])}    new")
    for name in only_baseline:
        print(f"{name:44s} {fmt(name, baseline[name])} {'--':>12s}    "
              f"retired")

    pair_failures = []
    for name, base, max_ratio_str in args.pair:
        try:
            max_ratio = float(max_ratio_str)
        except ValueError:
            print(f"error: --pair ratio is not a number: {max_ratio_str}",
                  file=sys.stderr)
            sys.exit(2)
        missing = [n for n in (name, base) if n not in current]
        if missing:
            print(f"error: --pair benchmark(s) missing from current run: "
                  f"{', '.join(missing)}", file=sys.stderr)
            sys.exit(2)
        ratio = current[name] / current[base] if current[base] > 0 else 1.0
        flag = ""
        if ratio > max_ratio:
            pair_failures.append((name, base, ratio, max_ratio))
            flag = "  << OVER BUDGET"
        print(f"pair {name} / {base}: {ratio:.3f}x "
              f"(budget {max_ratio:.2f}x){flag}")

    floor_failures = []
    for name, min_str in args.floor:
        try:
            floor = float(min_str)
        except ValueError:
            print(f"error: --floor minimum is not a number: {min_str}",
                  file=sys.stderr)
            sys.exit(2)
        if name not in current:
            print(f"error: --floor benchmark missing from current run: "
                  f"{name}", file=sys.stderr)
            sys.exit(2)
        flag = ""
        if current[name] < floor:
            floor_failures.append((name, current[name], floor))
            flag = "  << BELOW FLOOR"
        print(f"floor {name}: {current[name]:.0f} "
              f"(minimum {floor:.0f}){flag}")

    print(f"\ncompared {len(shared)} benchmarks "
          f"({len(only_current)} new, {len(only_baseline)} retired), "
          f"threshold {args.threshold:.2f}x, {len(args.pair)} pair gate(s), "
          f"{len(args.floor)} floor gate(s)")
    for name, base, ratio, max_ratio in pair_failures:
        print(f"FAIL: {name} is {ratio:.3f}x of {base} "
              f"(budget {max_ratio:.2f}x)", file=sys.stderr)
    for name, value, floor in floor_failures:
        print(f"FAIL: {name} is {value:.0f}, below the {floor:.0f} floor",
              file=sys.stderr)
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) over "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x slower", file=sys.stderr)
        sys.exit(1)
    if pair_failures or floor_failures:
        sys.exit(1)
    print("PASS: no benchmark regressed past the threshold")


if __name__ == "__main__":
    main()
