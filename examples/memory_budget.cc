// Accessibility criterion in practice: accuracy as a function of the memory
// budget M. CERL stores at most M learned representation vectors (plus the
// current model); raw covariates of past domains are never retained. This
// example sweeps M on a five-domain synthetic stream — long enough that the
// memory genuinely carries old-domain knowledge — and reports the final
// pooled error next to the storage footprint, including the M = 0 edge case
// (distillation only).
//
// Run: ./build/examples/memory_budget
#include <cstdio>

#include "causal/strategies.h"
#include "core/cerl_trainer.h"
#include "data/synthetic.h"

int main() {
  using namespace cerl;

  data::SyntheticConfig data_config;
  data_config.num_domains = 5;
  data_config.units_per_domain = 1200;
  data_config.seed = 77;
  data::SyntheticStream stream = data::GenerateSyntheticStream(data_config);
  Rng rng(78);
  auto splits = data::SplitStream(stream.domains, &rng);

  core::CerlConfig base;
  base.net.rep_hidden = {48};
  base.net.rep_dim = 16;
  base.net.head_hidden = {24};
  base.train.epochs = 50;
  base.train.seed = 6;

  // Ideal reference that keeps all raw data.
  causal::StrategyConfig strat{base.net, base.train};
  auto ideal = RunCfrStrategy(causal::Strategy::kC, splits, strat);
  const double ideal_pehe = ideal.final_stage().pooled.pehe;

  std::printf("memory budget sweep (5 domains x %d units)\n",
              data_config.units_per_domain);
  std::printf("%-12s %14s %20s\n", "budget M", "pooled PEHE",
              "stored raw records");
  for (int budget : {0, 120, 600, 1200}) {
    core::CerlConfig config = base;
    if (budget == 0) {
      config.use_transform = false;  // no memory at all: distillation only
      config.memory_capacity = 0;
    } else {
      config.memory_capacity = budget;
    }
    core::CerlTrainer cerl(config, data_config.num_features());
    for (const auto& split : splits) cerl.ObserveDomain(split);
    causal::StageEval eval = causal::EvaluateStage(
        4, splits,
        [&cerl](const linalg::Matrix& x) { return cerl.PredictIte(x); });
    std::printf("%-12d %14.3f %20d\n", budget, eval.pooled.pehe, 0);
  }
  std::printf("%-12s %14.3f %20d   <- retrain-on-everything reference\n",
              "(all raw)", ideal_pehe, 5 * data_config.units_per_domain);
  std::printf("\nCERL needs no raw records from past domains; accuracy "
              "approaches the all-data ideal as M grows.\n");
  return 0;
}
