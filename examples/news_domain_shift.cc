// News benchmark walkthrough: how domain shift severity affects a model
// that never adapts (CFR-A) versus CERL.
//
// Media items are represented by word counts; the outcome is the reader's
// opinion on a viewing device (desktop vs mobile = control vs treatment).
// Two batches of items arrive sequentially; their topic composition overlap
// is controlled by the shift scenario (substantial / moderate / none),
// exactly as in the paper's Table I protocol.
//
// Run: ./build/examples/news_domain_shift
#include <cstdio>

#include "causal/strategies.h"
#include "core/cerl_trainer.h"
#include "data/topic_benchmark.h"

int main() {
  using namespace cerl;

  causal::NetConfig net;
  net.rep_hidden = {48};
  net.rep_dim = 24;
  net.head_hidden = {24};
  causal::TrainConfig train;
  train.epochs = 50;
  train.seed = 5;

  std::printf("news benchmark: effect-estimation error on the NEW batch\n");
  std::printf("%-14s %16s %10s %16s\n", "shift", "topic overlap",
              "CFR-A", "CERL (no old data)");

  for (data::DomainShift shift :
       {data::DomainShift::kSubstantial, data::DomainShift::kModerate,
        data::DomainShift::kNone}) {
    data::TopicBenchmarkConfig config = data::NewsConfigSmall();
    config.shift = shift;
    config.seed = 9;
    data::TopicBenchmark bench = data::GenerateTopicBenchmark(config);
    Rng rng(10);
    auto splits = data::SplitStream(bench.domains, &rng);

    causal::StrategyConfig strat{net, train};
    auto run_a = RunCfrStrategy(causal::Strategy::kA, splits, strat);

    core::CerlConfig cerl_config;
    cerl_config.net = net;
    cerl_config.train = train;
    cerl_config.memory_capacity = 160;
    core::CerlTrainer cerl(cerl_config, bench.domains[0].num_features());
    cerl.ObserveDomain(splits[0]);
    cerl.ObserveDomain(splits[1]);

    const char* overlap = shift == data::DomainShift::kSubstantial ? "none"
                          : shift == data::DomainShift::kModerate
                              ? "partial"
                              : "identical";
    std::printf("%-14s %16s %10.3f %16.3f\n", data::DomainShiftName(shift),
                overlap, run_a.final_stage().per_domain[1].pehe,
                cerl.Evaluate(splits[1].test).pehe);
  }
  std::printf("\nthe never-adapted model (CFR-A) degrades as the new batch "
              "drifts away from its training topics; CERL keeps adapting "
              "without storing any previous news items.\n");
  return 0;
}
