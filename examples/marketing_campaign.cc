// Marketing-campaign scenario (the paper's motivating Alipay use case).
//
// A payment platform rolls out a coupon campaign city by city. Each city's
// electronic records arrive as a separate observational dataset: users who
// received the coupon (treatment) vs not (control), with spend uplift as
// the outcome. Privacy rules forbid keeping raw user records from earlier
// cities once their batch is processed.
//
// The example contrasts three operating modes as three city cohorts arrive:
//   - fine-tune  (CFR-B): update the model on each new city; forgets old
//     cities;
//   - retrain    (CFR-C): keep every city's raw records (violates the
//     privacy constraint) and retrain from scratch — the accuracy ideal;
//   - CERL: bounded memory of learned representations only.
//
// Run: ./build/examples/marketing_campaign
#include <cstdio>

#include "causal/strategies.h"
#include "core/cerl_trainer.h"
#include "data/synthetic.h"

int main() {
  using namespace cerl;
  const char* kCities[] = {"Hangzhou", "Shanghai", "Chengdu"};

  // Each city = one domain: users differ (covariate shift), the coupon's
  // causal mechanism is shared.
  data::SyntheticConfig data_config;
  data_config.num_domains = 3;
  data_config.units_per_domain = 1200;
  data_config.seed = 2026;
  data::SyntheticStream stream = data::GenerateSyntheticStream(data_config);
  Rng rng(11);
  auto splits = data::SplitStream(stream.domains, &rng);

  causal::NetConfig net;
  net.rep_hidden = {48};
  net.rep_dim = 16;
  net.head_hidden = {24};
  causal::TrainConfig train;
  train.epochs = 50;
  train.seed = 3;

  // Fine-tune and retrain baselines.
  causal::StrategyConfig strat{net, train};
  auto finetune = RunCfrStrategy(causal::Strategy::kB, splits, strat);
  auto retrain = RunCfrStrategy(causal::Strategy::kC, splits, strat);

  // CERL with a memory budget of 400 representation vectors.
  core::CerlConfig config;
  config.net = net;
  config.train = train;
  config.memory_capacity = 400;
  core::CerlTrainer cerl(config, data_config.num_features());

  std::printf("campaign rollout — uplift-model quality per city cohort\n");
  std::printf("(sqrt(PEHE): error of per-user uplift estimates; lower is "
              "better)\n\n");
  for (int d = 0; d < 3; ++d) {
    cerl.ObserveDomain(splits[d]);
    std::printf("=== after %s cohort (%d users) ===\n", kCities[d],
                stream.domains[d].num_units());
    std::printf("%-12s %12s %12s %12s\n", "city", "fine-tune", "retrain-all",
                "CERL");
    for (int j = 0; j <= d; ++j) {
      std::printf("%-12s %12.3f %12.3f %12.3f\n", kCities[j],
                  finetune.stages[d].per_domain[j].pehe,
                  retrain.stages[d].per_domain[j].pehe,
                  cerl.Evaluate(splits[j].test).pehe);
    }
    std::printf("storage: retrain-all keeps %d raw user records; CERL keeps "
                "%d representation vectors and no raw data\n\n",
                (d + 1) * data_config.units_per_domain, cerl.memory().size());
  }

  // Business readout for the latest cohort.
  const auto& last = splits[2].test;
  linalg::Vector uplift = cerl.PredictIte(last.x);
  double mean_uplift = 0.0;
  int positive = 0;
  for (double u : uplift) {
    mean_uplift += u;
    positive += u > 0.5;  // users with estimated uplift above 0.5 units
  }
  mean_uplift /= static_cast<double>(uplift.size());
  std::printf("Chengdu test cohort: estimated mean uplift %.3f (true ATE "
              "%.3f); %d of %zu users above the 0.5 targeting threshold\n",
              mean_uplift, last.TrueAte(), positive, uplift.size());
  return 0;
}
