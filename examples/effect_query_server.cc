// Effect-query serving walkthrough: a StreamEngine ingesting multiple
// tenant streams while reader threads answer ITE queries against each
// stream's published snapshot THE WHOLE TIME — reads never wait for
// training and training never waits for reads.
//
// Two tenants ingest the paper's synthetic covariate-shift stream at
// different scales. The moment a tenant finishes its first domain it
// publishes an immutable EffectSnapshot (copy-on-publish, RCU swap);
// every later domain publishes a fresh version. Two query threads (one
// single-user, one batched) hammer both tenants from push to drain; the
// run ends with a per-stream serving report: snapshot version, model
// staleness, queries answered, and the query latency distribution.
//
// Run: ./build/examples/effect_query_server
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "stream/stream_engine.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace cerl;  // NOLINT

core::CerlConfig TenantConfig(uint64_t seed) {
  core::CerlConfig config;
  config.net.rep_hidden = {32};
  config.net.rep_dim = 16;
  config.net.head_hidden = {16};
  config.train.epochs = 20;
  config.train.batch_size = 64;
  config.train.patience = 20;
  config.train.seed = seed;
  config.train.async_validation = true;
  config.memory_capacity = 150;
  return config;
}

}  // namespace

int main() {
  // Two tenants fed the synthetic covariate-shift stream (3 domains each).
  struct Tenant {
    const char* name;
    int units;
    uint64_t seed;
    int id = 0;
    std::vector<data::DataSplit> domains;
  };
  std::vector<Tenant> tenants = {{"tenant-a", 500, 11}, {"tenant-b", 350, 23}};

  data::SyntheticConfig dgp;
  dgp.num_domains = 3;
  const int input_dim = dgp.num_features();
  for (Tenant& t : tenants) {
    dgp.units_per_domain = t.units;
    dgp.seed = t.seed;
    data::SyntheticStream stream = data::GenerateSyntheticStream(dgp);
    Rng rng(t.seed + 1);
    t.domains = data::SplitStream(stream.domains, &rng);
  }

  stream::StreamEngine engine;
  for (Tenant& t : tenants) {
    t.id = engine.AddStream(t.name, TenantConfig(t.seed), input_dim);
  }

  // Query load: fixed covariate rows standing in for live users.
  Rng qrng(99);
  linalg::Matrix users(64, input_dim);
  for (int64_t i = 0; i < users.size(); ++i) users.data()[i] = qrng.Normal();

  // One context per reader thread (each owns its inference arena).
  std::vector<stream::QueryContext*> contexts = {engine.CreateQueryContext(),
                                                 engine.CreateQueryContext()};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> not_ready{0};

  // Reader 0: single-user queries, round-robin over users and tenants.
  std::thread single_reader([&] {
    double ite = 0.0;
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Tenant& t : tenants) {
        const Status s = engine.QueryEffect(
            contexts[0], t.id, users.row(static_cast<int>(i % 64)),
            input_dim, &ite);
        if (!s.ok()) not_ready.fetch_add(1, std::memory_order_relaxed);
      }
      ++i;
    }
  });
  // Reader 1: 32-row batches (one campaign audience per call).
  std::thread batch_reader([&] {
    linalg::Vector ite;
    linalg::Matrix batch(32, input_dim);
    for (int r = 0; r < 32; ++r) {
      for (int c = 0; c < input_dim; ++c) batch(r, c) = users(r, c);
    }
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Tenant& t : tenants) {
        const Status s =
            engine.QueryEffectBatch(contexts[1], t.id, batch, &ite);
        if (!s.ok()) not_ready.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Ingest while the readers are already live: the first queries land
  // before any snapshot exists (typed kFailedPrecondition, counted below),
  // then each migrated domain bumps the served version.
  WallTimer timer;
  for (size_t d = 0; d < tenants[0].domains.size(); ++d) {
    for (const Tenant& t : tenants) {
      Status pushed = engine.PushDomain(t.id, t.domains[d]);
      if (!pushed.ok()) {
        std::printf("%s: push shed (%s)\n", t.name,
                    pushed.ToString().c_str());
      }
    }
  }
  engine.Drain();
  const double ingest_s = timer.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  single_reader.join();
  batch_reader.join();

  std::printf("ingested %d domains x %zu tenants in %.2fs "
              "(queries running throughout)\n\n",
              dgp.num_domains, tenants.size(), ingest_s);
  std::printf("%-10s %8s %6s %12s %9s %10s %10s %10s\n", "stream", "version",
              "stage", "staleness_ms", "queries", "rows", "p50_us",
              "p99_us");
  for (const Tenant& t : tenants) {
    const stream::StreamQueryStats stats = engine.query_stats(t.id);
    std::printf("%-10s %8llu %6d %12.1f %9lld %10lld %10.1f %10.1f%s\n",
                t.name,
                static_cast<unsigned long long>(stats.snapshot_version),
                stats.snapshot_stage, stats.staleness_ms,
                static_cast<long long>(stats.queries),
                static_cast<long long>(stats.rows),
                stats.latency.Percentile(0.5) * 1e3,
                stats.latency.Percentile(0.99) * 1e3,
                stats.stale ? "  [STALE: quarantined]" : "");
  }
  std::printf("\nqueries before first publish (typed rejects): %lld\n",
              static_cast<long long>(
                  not_ready.load(std::memory_order_relaxed)));

  // The served model is the trained model: compare a few users' ITEs from
  // the final snapshot against the drained trainer directly.
  std::printf("\nsample ITEs (snapshot == trainer, bitwise):\n");
  for (const Tenant& t : tenants) {
    linalg::Matrix head(3, input_dim);
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < input_dim; ++c) head(r, c) = users(r, c);
    }
    linalg::Vector served;
    if (!engine.QueryEffectBatch(contexts[0], t.id, head, &served).ok()) {
      continue;
    }
    const linalg::Vector trained = engine.trainer(t.id).PredictIte(head);
    std::printf("  %-10s", t.name);
    for (int r = 0; r < 3; ++r) {
      std::printf("  user%d: %+0.4f%s", r, served[r],
                  served[r] == trained[r] ? "" : " (MISMATCH)");
    }
    std::printf("\n");
  }
  return 0;
}
