// Multi-tenant stream multiplexing: several independent CERL scenario
// streams served concurrently by one stream::StreamEngine.
//
// Three tenants share the engine's workers, each with its own trainer,
// memory bank and seeds:
//   - "news":      topic-model benchmark batches under moderate shift;
//   - "marketing": city-by-city coupon rollout (synthetic cohorts);
//   - "synthetic": the paper's §IV-C covariate-shift stream.
// Domains are pushed as they "arrive"; the engine validates each pushed
// domain on the shared pool, then pipelines ingest -> train -> migrate per
// stream (serialized within a stream, parallel across streams). For
// comparison the same work is rerun serially — per-stream results are
// bit-identical either way; only the wall clock changes (on multicore
// hosts).
//
// The run also demonstrates a rolling restart: mid-run — with domains still
// queued — the engine snapshots itself to disk (SaveSnapshot drains each
// stream to a domain boundary, journals the queued work, and keeps
// serving), and a FRESH engine restores from the file (LoadSnapshot),
// replays the journal, and finishes with bit-identical trainers.
//
// Run: ./build/examples/stream_multiplex
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "data/synthetic.h"
#include "data/topic_benchmark.h"
#include "stream/stream_engine.h"
#include "util/timer.h"

namespace {

using namespace cerl;  // NOLINT

struct Scenario {
  const char* name;
  core::CerlConfig config;
  int input_dim;
  std::vector<data::DataSplit> domains;
};

core::CerlConfig SmallConfig(uint64_t seed) {
  core::CerlConfig config;
  config.net.rep_hidden = {32};
  config.net.rep_dim = 16;
  config.net.head_hidden = {16};
  config.train.epochs = 25;
  config.train.batch_size = 64;
  config.train.patience = 25;
  config.train.seed = seed;
  config.train.async_validation = true;  // overlap scoring with next epoch
  config.memory_capacity = 150;
  return config;
}

std::vector<Scenario> BuildScenarios() {
  std::vector<Scenario> scenarios;

  {  // News: word-count covariates, moderate topic shift between batches.
    Scenario s;
    s.name = "news";
    s.config = SmallConfig(101);
    data::TopicBenchmarkConfig config = data::NewsConfigSmall();
    config.shift = data::DomainShift::kModerate;
    config.seed = 17;
    data::TopicBenchmark bench = data::GenerateTopicBenchmark(config);
    Rng rng(18);
    s.domains = data::SplitStream(bench.domains, &rng);
    s.input_dim = bench.domains[0].num_features();
    scenarios.push_back(std::move(s));
  }
  {  // Marketing: three synthetic city cohorts (coupon rollout).
    Scenario s;
    s.name = "marketing";
    s.config = SmallConfig(202);
    data::SyntheticConfig config;
    config.num_domains = 3;
    config.units_per_domain = 600;
    config.seed = 2026;
    data::SyntheticStream stream = data::GenerateSyntheticStream(config);
    Rng rng(19);
    s.domains = data::SplitStream(stream.domains, &rng);
    s.input_dim = config.num_features();
    scenarios.push_back(std::move(s));
  }
  {  // Synthetic: the paper's covariate-shift stream, reduced scale.
    Scenario s;
    s.name = "synthetic";
    s.config = SmallConfig(303);
    data::SyntheticConfig config;
    config.num_domains = 3;
    config.units_per_domain = 500;
    config.mean_shift = 1.0;
    config.seed = 4;
    data::SyntheticStream stream = data::GenerateSyntheticStream(config);
    Rng rng(20);
    s.domains = data::SplitStream(stream.domains, &rng);
    s.input_dim = config.num_features();
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

}  // namespace

int main() {
  std::vector<Scenario> scenarios = BuildScenarios();

  // --- Concurrent: every stream multiplexed over the engine's workers ---
  WallTimer engine_timer;
  stream::StreamEngine engine;
  std::vector<int> ids;
  for (const Scenario& s : scenarios) {
    ids.push_back(engine.AddStream(s.name, s.config, s.input_dim));
  }
  for (size_t i = 0; i < scenarios.size(); ++i) {
    for (const data::DataSplit& split : scenarios[i].domains) {
      // Copies; real feeds would move. A push can shed with a typed reject
      // (quarantined tenant, full queue) — e.g. under a CERL_FAULTS chaos
      // spec — and the fleet keeps serving.
      Status pushed = engine.PushDomain(ids[i], split);
      if (!pushed.ok()) {
        std::printf("stream '%s': push shed (%s)\n", scenarios[i].name,
                    pushed.ToString().c_str());
      }
    }
  }

  // Snapshot UNDER LOAD: most pushed domains are still queued, so the
  // container carries every trainer plus a replay journal of pending work.
  const char* snap_path = "stream_multiplex.snap";
  stream::StreamEngine::SnapshotInfo snap_info;
  Status snap = engine.SaveSnapshot(snap_path, &snap_info);
  if (!snap.ok()) {
    std::printf("snapshot failed: %s\n", snap.ToString().c_str());
    return 1;
  }

  engine.Drain();
  const double engine_seconds = engine_timer.ElapsedSeconds();

  std::printf("stream multiplexing — %d tenants on %d workers\n\n",
              engine.num_streams(), engine.num_workers());
  std::printf("%-11s %7s %9s %12s %14s\n", "stream", "domain", "epochs",
              "sqrt(PEHE)", "memory units");
  for (size_t i = 0; i < scenarios.size(); ++i) {
    for (const stream::DomainResult& r : engine.results(ids[i])) {
      if (!r.status.ok()) {
        std::printf("%-11s %7d   dropped: %s\n", scenarios[i].name,
                    r.domain_index, r.status.ToString().c_str());
        continue;
      }
      std::printf("%-11s %7d %9d %12.3f %14d\n", scenarios[i].name,
                  r.domain_index, r.stats.epochs_run,
                  r.has_metrics ? r.metrics.pehe : -1.0, r.memory_units);
    }
    if (engine.health(ids[i]) != stream::StreamHealth::kHealthy) {
      std::printf("%-11s         health: %s\n", scenarios[i].name,
                  stream::StreamHealthName(engine.health(ids[i])));
    }
  }

  // --- Rolling restart: a fresh engine resumes from the snapshot --------
  std::printf("\nsnapshot under load: %d streams, %d domains trained, "
              "%d journaled (still queued at the fence)\n",
              snap_info.num_streams, snap_info.completed_domains,
              snap_info.journaled_domains);
  stream::StreamEngine resumed;
  Status restored = resumed.LoadSnapshot(snap_path);
  if (!restored.ok()) {
    std::printf("restore failed: %s\n", restored.ToString().c_str());
    return 1;
  }
  resumed.Drain();  // journal replays: queued domains train in push order
  double max_restart_diff = 0.0;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    // A stream with no trained stage (e.g. quarantined before its first
    // domain completed under fault injection) has no model to query.
    if (engine.trainer(ids[i]).stages_seen() == 0 ||
        resumed.trainer(static_cast<int>(i)).stages_seen() == 0) {
      continue;
    }
    const linalg::Matrix& probe = scenarios[i].domains[0].test.x;
    const linalg::Vector a = engine.trainer(ids[i]).PredictIte(probe);
    const linalg::Vector b =
        resumed.trainer(static_cast<int>(i)).PredictIte(probe);
    for (size_t u = 0; u < a.size(); ++u) {
      max_restart_diff = std::max(max_restart_diff, std::abs(a[u] - b[u]));
    }
  }
  std::printf("restored engine finished the journal; max |ITE diff| vs the "
              "uninterrupted engine: %g (bit-identical restart)\n",
              max_restart_diff);

  // --- Serial reference: identical math, one domain at a time ----------
  WallTimer serial_timer;
  for (const Scenario& s : scenarios) {
    core::CerlTrainer trainer(s.config, s.input_dim);
    for (const data::DataSplit& split : s.domains) {
      trainer.ObserveDomain(split);
    }
  }
  const double serial_seconds = serial_timer.ElapsedSeconds();

  std::printf("\nwall time: engine %.2fs vs serial %.2fs (%.2fx aggregate "
              "throughput; gains require multiple hardware threads)\n",
              engine_seconds, serial_seconds,
              serial_seconds / engine_seconds);
  std::printf("per-stream results are bit-identical in both modes — the "
              "engine changes scheduling, never math.\n");
  return 0;
}
