// Quickstart: continual causal effect estimation in ~40 lines.
//
// Two observational datasets arrive one after the other from different
// distributions. CERL learns treatment effects from the first, then absorbs
// the second WITHOUT access to the first dataset's raw covariates — only a
// bounded memory of learned representations — and can still estimate
// effects for units from both domains.
//
// Build & run: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/cerl_trainer.h"
#include "data/synthetic.h"

int main() {
  using namespace cerl;

  // 1. Two sequential domains of observational data (covariates shift
  //    between domains; the causal mechanism stays fixed).
  data::SyntheticConfig data_config;
  data_config.num_domains = 2;
  data_config.units_per_domain = 1500;
  data_config.seed = 42;
  data::SyntheticStream stream = data::GenerateSyntheticStream(data_config);

  Rng rng(7);
  std::vector<data::DataSplit> splits =
      data::SplitStream(stream.domains, &rng);  // 60/20/20 per domain

  // 2. Configure CERL: representation net + outcome heads, memory budget.
  core::CerlConfig config;
  config.net.rep_hidden = {48};
  config.net.rep_dim = 16;
  config.net.head_hidden = {24};
  config.train.epochs = 60;
  config.train.seed = 1;
  config.memory_capacity = 500;  // representations kept, never raw data

  // 3. Observe domains as they arrive (Algorithm 1).
  core::CerlTrainer cerl(config, data_config.num_features());
  for (int d = 0; d < 2; ++d) {
    causal::TrainStats stats = cerl.ObserveDomain(splits[d]);
    std::printf(
        "after domain %d: memory holds %d representation vectors "
        "(%d epochs, %.1fs)\n",
        d + 1, cerl.memory().size(), stats.epochs_run, stats.wall_seconds);
  }

  // 4. Estimate treatment effects for units from BOTH domains.
  for (int d = 0; d < 2; ++d) {
    causal::CausalMetrics m = cerl.Evaluate(splits[d].test);
    std::printf(
        "domain %d test: sqrt(PEHE)=%.3f  eps_ATE=%.3f  (true ATE %.3f)\n",
        d + 1, m.pehe, m.ate_error, splits[d].test.TrueAte());
  }
  return 0;
}
