// Checkpointing across "process restarts": observational batches arrive
// days apart; between batches the service shuts down and may not retain ANY
// raw data (the paper's accessibility constraint). A CERL checkpoint stores
// exactly what the method keeps anyway — model weights, scalers, and the
// bounded representation memory — so estimation resumes losslessly.
//
// Run: ./build/examples/checkpoint_resume
#include <cstdio>

#include "core/cerl_trainer.h"
#include "data/synthetic.h"

int main() {
  using namespace cerl;

  data::SyntheticConfig data_config;
  data_config.num_domains = 3;
  data_config.units_per_domain = 1000;
  data_config.seed = 123;
  data::SyntheticStream stream = data::GenerateSyntheticStream(data_config);
  Rng rng(124);
  auto splits = data::SplitStream(stream.domains, &rng);

  core::CerlConfig config;
  config.net.rep_hidden = {48};
  config.net.rep_dim = 16;
  config.net.head_hidden = {24};
  config.train.epochs = 40;
  config.train.seed = 9;
  config.memory_capacity = 400;
  const std::string ckpt = "/tmp/cerl_example.ckpt";

  // Day 1: first batch arrives; train, checkpoint, shut down.
  {
    core::CerlTrainer day1(config, data_config.num_features());
    day1.ObserveDomain(splits[0]);
    Status s = day1.SaveCheckpoint(ckpt);
    std::printf("day 1: trained on batch 1 (%d units), checkpoint %s (%s)\n",
                stream.domains[0].num_units(), ckpt.c_str(),
                s.ToString().c_str());
  }  // Raw data of batch 1 is gone with this scope.

  // Day 2: a fresh process resumes and absorbs batch 2.
  {
    core::CerlTrainer day2(config, data_config.num_features());
    Status s = day2.LoadCheckpoint(ckpt);
    std::printf("day 2: resumed from checkpoint (%s), stages so far: %d, "
                "memory: %d representations\n",
                s.ToString().c_str(), day2.stages_seen(),
                day2.memory().size());
    day2.ObserveDomain(splits[1]);
    s = day2.SaveCheckpoint(ckpt);
    std::printf("day 2: trained on batch 2, re-checkpointed (%s)\n",
                s.ToString().c_str());
  }

  // Day 3: another fresh process, third batch, then evaluate everything.
  core::CerlTrainer day3(config, data_config.num_features());
  if (!day3.LoadCheckpoint(ckpt).ok()) return 1;
  day3.ObserveDomain(splits[2]);
  std::printf("day 3: trained on batch 3; estimates for all batches:\n");
  for (int d = 0; d < 3; ++d) {
    causal::CausalMetrics m = day3.Evaluate(splits[d].test);
    std::printf("  batch %d test: sqrt(PEHE)=%.3f eps_ATE=%.3f\n", d + 1,
                m.pehe, m.ate_error);
  }
  std::printf("no raw covariates from batches 1-2 were ever stored on "
              "disk.\n");
  return 0;
}
