// Shared infrastructure for the reproduction benches: strategy + CERL
// drivers over a domain stream, paper-style table printing with the paper's
// reference numbers alongside, qualitative verdict checks, and CSV output.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "causal/strategies.h"
#include "core/cerl_trainer.h"
#include "util/csv.h"
#include "util/flags.h"

namespace cerl::bench {

/// Scale preset for a bench run.
enum class Scale { kTiny, kSmall, kPaper };

/// Parses --scale=tiny|small|paper (default small).
Scale ParseScale(const Flags& flags);
const char* ScaleName(Scale scale);

/// One evaluated method on a 2-domain stream (Table I / II row).
struct MethodRow {
  std::string name;
  causal::CausalMetrics previous;  ///< on domain-1 test set
  causal::CausalMetrics current;   ///< on domain-2 test set
  bool needs_previous_raw_data = false;
  bool within_memory_budget = true;
};

/// Reference numbers from the paper for side-by-side printing.
struct PaperRow {
  const char* name;
  double prev_pehe, prev_ate, new_pehe, new_ate;
};

/// Runs CFR-A/B/C over the stream and returns their final-stage rows.
std::vector<MethodRow> RunStrategyRows(
    const std::vector<data::DataSplit>& splits,
    const causal::StrategyConfig& config);

/// Runs CERL over the stream and returns its row.
MethodRow RunCerlRow(const std::vector<data::DataSplit>& splits,
                     const core::CerlConfig& config, std::string name = "CERL");

/// Prints a Table-I/II style block: measured rows, then paper reference.
void PrintMethodTable(const std::string& title,
                      const std::vector<MethodRow>& rows,
                      const std::vector<PaperRow>& paper_reference);

/// Element-wise accumulation / averaging of MethodRow metrics across
/// repetitions.
void AccumulateRows(std::vector<MethodRow>* acc,
                    const std::vector<MethodRow>& rows);
void DivideRows(std::vector<MethodRow>* rows, int n);

/// Appends rows to a CSV writer (scenario column + 4 metric columns).
void AppendRowsToCsv(CsvWriter* csv, const std::string& scenario,
                     const std::vector<MethodRow>& rows);

/// Prints and tallies a qualitative verdict ("shape" check vs the paper).
class VerdictPrinter {
 public:
  void Check(const std::string& claim, bool holds);
  /// Prints the summary; returns the number of failed verdicts.
  int Summary() const;

 private:
  int passed_ = 0;
  int failed_ = 0;
};

/// Writes the CSV if --out was given; logs the outcome.
void MaybeWriteCsv(const Flags& flags, const CsvWriter& csv,
                   const std::string& default_path);

/// Optimization settings per scale (epochs/batch/lr shared by all benches).
causal::TrainConfig BenchTrainConfig(Scale scale, uint64_t seed);

/// Representation/head architecture for the topic benchmarks (input dim is
/// supplied at model construction).
causal::NetConfig TopicNetConfig(Scale scale);

/// Architecture for the synthetic benchmarks (100 covariates).
causal::NetConfig SyntheticNetConfig(Scale scale);

}  // namespace cerl::bench
