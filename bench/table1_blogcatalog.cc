// Reproduces Table I (BlogCatalog half): same protocol as the News half on
// a BlogCatalog-like corpus (bloggers described by bag-of-words keywords;
// paper: 5196 units, 2160 features, 50 LDA topics).
//
// Usage: table1_blogcatalog [--scale=tiny|small|paper] [--seed=N] [--out=csv]
#include <cstdio>

#include "bench_common.h"
#include "data/topic_benchmark.h"
#include "util/timer.h"

namespace cerl::bench {
namespace {

data::TopicBenchmarkConfig BlogConfig(Scale scale) {
  switch (scale) {
    case Scale::kTiny: {
      data::TopicBenchmarkConfig c;
      c.corpus.num_docs = 600;
      c.corpus.vocab_size = 120;
      c.corpus.num_topics = 10;
      c.corpus.doc_length_mean = 30.0;
      c.corpus.alpha = 0.05;
      c.lda.num_topics = 10;
      c.lda.iterations = 25;
      return c;
    }
    case Scale::kSmall:
      return data::BlogCatalogConfigSmall();
    case Scale::kPaper:
      return data::BlogCatalogConfigPaper();
  }
  return data::BlogCatalogConfigSmall();
}

const std::vector<PaperRow>& PaperReference(data::DomainShift shift) {
  static const std::vector<PaperRow> kSubstantial = {
      {"CFR-A", 9.92, 4.25, 13.65, 6.21},
      {"CFR-B", 14.21, 6.98, 9.77, 4.11},
      {"CFR-C", 9.93, 4.24, 9.77, 4.12},
      {"CERL", 9.96, 4.25, 9.78, 4.12}};
  static const std::vector<PaperRow> kModerate = {
      {"CFR-A", 9.89, 4.22, 11.26, 5.03},
      {"CFR-B", 12.35, 5.67, 9.83, 4.18},
      {"CFR-C", 9.88, 4.21, 9.81, 4.16},
      {"CERL", 9.90, 4.24, 9.82, 4.17}};
  static const std::vector<PaperRow> kNone = {
      {"CFR-A", 9.86, 4.20, 9.85, 4.19},
      {"CFR-B", 9.85, 4.18, 9.83, 4.18},
      {"CFR-C", 9.84, 4.18, 9.83, 4.18},
      {"CERL", 9.85, 4.19, 9.83, 4.18}};
  switch (shift) {
    case data::DomainShift::kSubstantial: return kSubstantial;
    case data::DomainShift::kModerate: return kModerate;
    case data::DomainShift::kNone: return kNone;
  }
  return kNone;
}

int Run(const Flags& flags) {
  const Scale scale = ParseScale(flags);
  const uint64_t seed = flags.GetInt("seed", 2);
  const int reps = flags.GetInt("reps", scale == Scale::kTiny ? 1 : 2);
  std::printf("== Table I (BlogCatalog) — scale=%s seed=%llu reps=%d ==\n",
              ScaleName(scale), static_cast<unsigned long long>(seed), reps);

  CsvWriter csv({"scenario", "method", "prev_pehe", "prev_ate", "new_pehe",
                 "new_ate"});
  VerdictPrinter verdicts;
  WallTimer timer;

  for (data::DomainShift shift :
       {data::DomainShift::kSubstantial, data::DomainShift::kModerate,
        data::DomainShift::kNone}) {
    data::TopicBenchmarkConfig config = BlogConfig(scale);
    config.shift = shift;
    core::CerlConfig cerl_config;
    std::vector<MethodRow> rows;
    int domain_units[2] = {0, 0};
    for (int rep = 0; rep < reps; ++rep) {
      config.seed = seed + 1000 * rep;
      data::TopicBenchmark bench = data::GenerateTopicBenchmark(config);
      domain_units[0] = bench.domains[0].num_units();
      domain_units[1] = bench.domains[1].num_units();
      Rng split_rng(seed + 211 + rep);
      auto splits = data::SplitStream(bench.domains, &split_rng);

      causal::StrategyConfig strat;
      strat.net = TopicNetConfig(scale);
      strat.train = BenchTrainConfig(scale, seed + 13 + 31 * rep);

      cerl_config.net = strat.net;
      cerl_config.train = strat.train;
      cerl_config.memory_capacity =
          scale == Scale::kPaper ? 500
                                 : std::max(50, config.corpus.num_docs / 10);

      std::vector<MethodRow> rep_rows = RunStrategyRows(splits, strat);
      rep_rows.push_back(RunCerlRow(splits, cerl_config));
      AccumulateRows(&rows, rep_rows);
    }
    DivideRows(&rows, reps);
    const MethodRow& a = rows[0];
    const MethodRow& b = rows[1];
    const MethodRow& c = rows[2];
    const MethodRow& cerl = rows[3];

    char title[160];
    std::snprintf(title, sizeof(title),
                  "-- %s shift (domains %d/%d units, M=%d) --",
                  data::DomainShiftName(shift), domain_units[0],
                  domain_units[1], cerl_config.memory_capacity);
    PrintMethodTable(title, rows, PaperReference(shift));
    AppendRowsToCsv(&csv, data::DomainShiftName(shift), rows);

    if (shift != data::DomainShift::kNone) {
      verdicts.Check(std::string(data::DomainShiftName(shift)) +
                         ": CFR-A declines on new data vs CFR-C",
                     a.current.pehe > 1.1 * c.current.pehe);
      verdicts.Check(std::string(data::DomainShiftName(shift)) +
                         ": CFR-B forgets previous data vs CFR-C",
                     b.previous.pehe > 1.1 * c.previous.pehe);
      verdicts.Check(std::string(data::DomainShiftName(shift)) +
                         ": CERL beats fine-tuning on previous data",
                     cerl.previous.pehe < b.previous.pehe);
      verdicts.Check(std::string(data::DomainShiftName(shift)) +
                         ": CERL tracks CFR-C on new data (<=1.5x)",
                     cerl.current.pehe < 1.5 * c.current.pehe);
    }
  }

  std::printf("\ntotal time: %.1fs\n", timer.ElapsedSeconds());
  MaybeWriteCsv(flags, csv, "table1_blogcatalog.csv");
  verdicts.Summary();
  return 0;
}

}  // namespace
}  // namespace cerl::bench

int main(int argc, char** argv) {
  cerl::Flags flags(argc, argv);
  return cerl::bench::Run(flags);
}
