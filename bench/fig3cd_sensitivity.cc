// Reproduces Figure 3 (c) and (d): hyperparameter robustness of CERL on the
// synthetic two-domain stream. (c) sweeps the representation-balance weight
// alpha, (d) sweeps the transformation weight delta; the paper reports that
// performance is stable over a large parameter range (beta is fixed
// following the continual-learning literature).
//
// Usage: fig3cd_sensitivity [--scale=tiny|small|paper] [--seed=N] [--out=csv]
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "data/synthetic.h"
#include "util/timer.h"

namespace cerl::bench {
namespace {

struct SweepPoint {
  double value;
  double pooled_pehe;
  double pooled_ate;
};

SweepPoint RunPoint(const std::vector<data::DataSplit>& splits,
                    const core::CerlConfig& config, double value) {
  core::CerlTrainer trainer(config, splits[0].train.num_features());
  for (const auto& split : splits) trainer.ObserveDomain(split);
  causal::StageEval eval = causal::EvaluateStage(
      static_cast<int>(splits.size()) - 1, splits,
      [&trainer](const linalg::Matrix& x) { return trainer.PredictIte(x); });
  return {value, eval.pooled.pehe, eval.pooled.ate_error};
}

void PrintSweep(const char* panel, const char* param,
                const std::vector<SweepPoint>& points) {
  std::printf("\n-- Fig 3(%s): sweep over %s --\n", panel, param);
  std::printf("%-10s %12s %12s\n", param, "pooled PEHE", "pooled eATE");
  for (const auto& p : points) {
    std::printf("%-10.3g %12.3f %12.3f\n", p.value, p.pooled_pehe,
                p.pooled_ate);
  }
}

double Spread(const std::vector<SweepPoint>& points) {
  double lo = points[0].pooled_pehe, hi = points[0].pooled_pehe;
  for (const auto& p : points) {
    lo = std::min(lo, p.pooled_pehe);
    hi = std::max(hi, p.pooled_pehe);
  }
  return hi / std::max(lo, 1e-12);
}

int Run(const Flags& flags) {
  const Scale scale = ParseScale(flags);
  const uint64_t seed = flags.GetInt("seed", 6);

  data::SyntheticConfig data_config;
  data_config.num_domains = 2;
  data_config.seed = seed;
  switch (scale) {
    case Scale::kTiny: data_config.units_per_domain = 600; break;
    case Scale::kSmall: data_config.units_per_domain = 1500; break;
    case Scale::kPaper: data_config.units_per_domain = 10000; break;
  }
  std::printf("== Fig. 3(c,d) — hyperparameter robustness, n=%d/domain ==\n",
              data_config.units_per_domain);

  WallTimer timer;
  data::SyntheticStream stream = data::GenerateSyntheticStream(data_config);
  Rng split_rng(seed + 57);
  auto splits = data::SplitStream(stream.domains, &split_rng);

  core::CerlConfig base;
  base.net = SyntheticNetConfig(scale);
  base.train = BenchTrainConfig(scale, seed + 61);
  base.memory_capacity = data_config.units_per_domain / 2;

  const std::vector<double> alphas = {0.03, 0.1, 0.3, 1.0, 3.0};
  const std::vector<double> deltas = {0.03, 0.1, 0.3, 1.0, 3.0};

  std::vector<SweepPoint> alpha_points;
  for (double alpha : alphas) {
    core::CerlConfig config = base;
    config.train.alpha = alpha;
    alpha_points.push_back(RunPoint(splits, config, alpha));
  }
  std::vector<SweepPoint> delta_points;
  for (double delta : deltas) {
    core::CerlConfig config = base;
    config.delta = delta;
    delta_points.push_back(RunPoint(splits, config, delta));
  }

  PrintSweep("c", "alpha", alpha_points);
  PrintSweep("d", "delta", delta_points);

  CsvWriter csv({"panel", "param_value", "pooled_pehe", "pooled_ate"});
  for (const auto& p : alpha_points) {
    csv.AddRow({"c_alpha", CsvWriter::Cell(p.value),
                CsvWriter::Cell(p.pooled_pehe), CsvWriter::Cell(p.pooled_ate)});
  }
  for (const auto& p : delta_points) {
    csv.AddRow({"d_delta", CsvWriter::Cell(p.value),
                CsvWriter::Cell(p.pooled_pehe), CsvWriter::Cell(p.pooled_ate)});
  }

  VerdictPrinter verdicts;
  verdicts.Check(
      "performance stable over the alpha range (max/min PEHE <= 1.4)",
      Spread(alpha_points) <= 1.4);
  verdicts.Check(
      "performance stable over the delta range (max/min PEHE <= 1.4)",
      Spread(delta_points) <= 1.4);

  std::printf("\ntotal time: %.1fs\n", timer.ElapsedSeconds());
  MaybeWriteCsv(flags, csv, "fig3cd_sensitivity.csv");
  verdicts.Summary();
  return 0;
}

}  // namespace
}  // namespace cerl::bench

int main(int argc, char** argv) {
  cerl::Flags flags(argc, argv);
  return cerl::bench::Run(flags);
}
