// Serving-plane microbenchmarks: effect-query throughput (single-user and
// batched) against a published snapshot, the write-path cost of snapshot
// publication (ingest with publishing on vs off, CI-gated as a pair), and a
// mixed read/write soak with a full-tilt reader thread hammering the
// serving plane while the engine ingests domains.
//
// Compiled into the micro_substrates binary (no BENCHMARK_MAIN here).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/cerl_trainer.h"
#include "data/dataset.h"
#include "stream/stream_engine.h"
#include "util/check.h"
#include "util/rng.h"

namespace cerl {
namespace {

constexpr int kFeatures = 8;

data::DataSplit QueryBenchSplit(Rng* rng, int units, double shift) {
  data::CausalDataset dataset;
  dataset.x = linalg::Matrix(units, kFeatures);
  for (int64_t i = 0; i < dataset.x.size(); ++i) {
    dataset.x.data()[i] = rng->Normal();
  }
  dataset.t.resize(units);
  dataset.y.resize(units);
  dataset.mu0.assign(units, 0.0);
  dataset.mu1.assign(units, 1.0);
  for (int i = 0; i < units; ++i) {
    dataset.x(i, 0) += shift;
    dataset.t[i] = rng->Uniform() < 0.5 ? 1 : 0;
    dataset.y[i] = std::sin(dataset.x(i, 0)) + dataset.t[i] +
                   0.1 * rng->Normal();
  }
  return data::SplitDataset(dataset, rng);
}

core::CerlConfig QueryBenchConfig(uint64_t seed) {
  core::CerlConfig config;
  config.net.rep_hidden = {16};
  config.net.rep_dim = 8;
  config.net.head_hidden = {8};
  // Relu hidden layers: the serving-latency floor should measure the
  // pipeline, not libm's expm1 (the rep output stays tanh by architecture).
  config.net.activation = nn::Activation::kRelu;
  config.train.epochs = 6;
  config.train.batch_size = 64;
  config.train.patience = 6;
  config.train.alpha = 0.2;
  config.train.seed = seed;
  config.memory_capacity = 80;
  return config;
}

// Engine with one trained-and-published stream, shared bench scaffolding.
struct ServingFixture {
  explicit ServingFixture(uint64_t seed)
      : engine(MakeOptions()), queries(1024, kFeatures) {
    Rng rng(seed);
    id = engine.AddStream("serve", QueryBenchConfig(seed), kFeatures);
    CERL_CHECK(engine.PushDomain(id, QueryBenchSplit(&rng, 240, 0.0)).ok());
    engine.Drain();
    ctx = engine.CreateQueryContext();
    for (int64_t i = 0; i < queries.size(); ++i) {
      queries.data()[i] = rng.Normal();
    }
  }

  static stream::StreamEngineOptions MakeOptions() {
    stream::StreamEngineOptions options;
    options.num_workers = 1;
    return options;
  }

  stream::StreamEngine engine;
  stream::QueryContext* ctx = nullptr;
  int id = 0;
  linalg::Matrix queries;
};

// Single-user effect queries, one per iteration, cycling through 1024
// distinct covariate rows. The qps counter is the serving throughput the CI
// floor-gates (tools/compare_bench.py --floor): the acceptance target is
// >= 1e6 queries/s/core in Release on the committed-baseline machine.
void BM_EffectQueryThroughput(benchmark::State& state) {
  ServingFixture fx(11);
  double ite = 0.0;
  CERL_CHECK(
      fx.engine.QueryEffect(fx.ctx, fx.id, fx.queries.row(0), kFeatures, &ite)
          .ok());
  size_t i = 0;
  for (auto _ : state) {
    fx.engine.QueryEffect(fx.ctx, fx.id, fx.queries.row(i & 1023), kFeatures,
                          &ite);
    benchmark::DoNotOptimize(ite);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EffectQueryThroughput);

// Batched variant: rows/s at batch sizes straddling the 64-row block size.
void BM_EffectQueryBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  ServingFixture fx(12);
  linalg::Matrix x(batch, kFeatures);
  for (int r = 0; r < batch; ++r) {
    for (int c = 0; c < kFeatures; ++c) x(r, c) = fx.queries(r & 1023, c);
  }
  linalg::Vector ite;
  CERL_CHECK(fx.engine.QueryEffectBatch(fx.ctx, fx.id, x, &ite).ok());
  for (auto _ : state) {
    fx.engine.QueryEffectBatch(fx.ctx, fx.id, x, &ite);
    benchmark::DoNotOptimize(ite.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EffectQueryBatch)->Arg(16)->Arg(256);

// Ingest with snapshot publication on/off — the serving plane's entire
// write-path cost (snapshot build + fingerprint + RCU swap per domain).
// CI-gated as a pair at 1.05x (tools/compare_bench.py --pair), mirroring
// the guards-on/off pair: machine-independent because both arms share one
// run's load.
void StreamEngineIngestServeBody(benchmark::State& state,
                                 bool publish_snapshots) {
  const int streams = static_cast<int>(state.range(0));
  const int kDomains = 2;
  std::vector<std::vector<data::DataSplit>> domains(streams);
  for (int s = 0; s < streams; ++s) {
    Rng rng(140 + s);
    for (int d = 0; d < kDomains; ++d) {
      domains[s].push_back(QueryBenchSplit(&rng, 240, 0.8 * d));
    }
  }
  core::CerlConfig config = QueryBenchConfig(0);
  config.train.async_validation = true;

  stream::StreamEngineOptions options;
  options.publish_snapshots = publish_snapshots;
  for (auto _ : state) {
    stream::StreamEngine engine(options);
    for (int s = 0; s < streams; ++s) {
      config.train.seed = 150 + s;
      const int id = engine.AddStream("bench", config, kFeatures);
      for (const data::DataSplit& split : domains[s]) {
        CERL_CHECK(engine.PushDomain(id, split).ok());
      }
    }
    engine.Drain();
  }
  state.SetItemsProcessed(state.iterations() * streams * kDomains);
}

void BM_StreamEngineIngestServe(benchmark::State& state) {
  StreamEngineIngestServeBody(state, /*publish_snapshots=*/true);
}
BENCHMARK(BM_StreamEngineIngestServe)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_StreamEngineIngestNoServe(benchmark::State& state) {
  StreamEngineIngestServeBody(state, /*publish_snapshots=*/false);
}
BENCHMARK(BM_StreamEngineIngestNoServe)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Mixed read/write: a full-tilt reader thread issues 16-row batched queries
// nonstop while the engine ingests 2 domains x 2 streams. Counters report
// both sides of the contention story: ingest_p99_ms (domain completion
// latency under read load; suffix-gated against the committed baseline)
// and query_qps (reads served per wall second mid-ingest). On a single
// hardware thread the reader and the trainers timeshare one core, so
// ingest slows by CPU division — the lock-freedom claim is that it slows
// by scheduling only, never by blocking on the read side.
void BM_EffectQueryMixed(benchmark::State& state) {
  const int kStreams = 2;
  const int kDomains = 2;
  std::vector<std::vector<data::DataSplit>> domains(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    Rng rng(160 + s);
    for (int d = 0; d < kDomains; ++d) {
      domains[s].push_back(QueryBenchSplit(&rng, 240, 0.8 * d));
    }
  }
  core::CerlConfig config = QueryBenchConfig(0);
  config.train.async_validation = false;

  Rng qrng(161);
  linalg::Matrix qx(16, kFeatures);
  for (int64_t i = 0; i < qx.size(); ++i) qx.data()[i] = qrng.Normal();

  double ingest_p99 = 0.0;
  double queries_per_s = 0.0;
  int rounds = 0;
  for (auto _ : state) {
    stream::StreamEngineOptions options;
    options.num_workers = 1;
    stream::StreamEngine engine(options);
    std::vector<int> ids;
    for (int s = 0; s < kStreams; ++s) {
      config.train.seed = 170 + s;
      ids.push_back(engine.AddStream("mixed", config, kFeatures));
    }
    stream::QueryContext* ctx = engine.CreateQueryContext();

    std::atomic<bool> stop{false};
    std::atomic<int64_t> answered{0};
    std::thread reader([&] {
      linalg::Vector ite;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int id : ids) {
          if (engine.QueryEffectBatch(ctx, id, qx, &ite).ok()) {
            answered.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (int d = 0; d < kDomains; ++d) {
      for (int s = 0; s < kStreams; ++s) {
        CERL_CHECK(engine.PushDomain(ids[s], domains[s][d]).ok());
      }
    }
    engine.Drain();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    ingest_p99 +=
        engine.TotalSchedStats().completion_latency.Percentile(0.99);
    queries_per_s +=
        static_cast<double>(answered.load(std::memory_order_relaxed)) /
        elapsed_s;
    ++rounds;
  }
  state.SetItemsProcessed(state.iterations() * kStreams * kDomains);
  state.counters["ingest_p99_ms"] = ingest_p99 / rounds;
  state.counters["query_qps"] = queries_per_s / rounds;
}
BENCHMARK(BM_EffectQueryMixed)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace cerl
