// Reproduces Table II: the §IV-C synthetic benchmark (35 confounders, 10
// instruments, 35 adjusters, 20 irrelevant; partially linear outcome,
// probit propensity) with two sequential domains. Rows: CFR-A/B/C, CERL,
// and the three ablations the paper reports — CERL w/o FRT (no feature
// representation transformation => no memory replay), w/o herding (random
// memory subsampling), and w/o cosine normalization. Averaged over --reps
// independent simulations (paper: 10).
//
// Usage: table2_synthetic [--scale=tiny|small|paper] [--seed=N] [--reps=K]
//                         [--out=csv]
#include <cstdio>

#include "bench_common.h"
#include "causal/baselines.h"
#include "data/synthetic.h"
#include "util/check.h"
#include "util/timer.h"

namespace cerl::bench {
namespace {

data::SyntheticConfig SyntheticDataConfig(Scale scale, uint64_t seed) {
  data::SyntheticConfig c;
  c.num_domains = 2;
  c.seed = seed;
  switch (scale) {
    case Scale::kTiny: c.units_per_domain = 600; break;
    case Scale::kSmall: c.units_per_domain = 2000; break;
    case Scale::kPaper: c.units_per_domain = 10000; break;
  }
  return c;
}

const std::vector<PaperRow>& PaperReference() {
  static const std::vector<PaperRow> kRows = {
      {"CFR-A", 1.47, 0.35, 2.51, 0.73},
      {"CFR-B", 1.82, 0.47, 1.63, 0.45},
      {"CFR-C", 1.49, 0.36, 1.62, 0.44},
      {"CERL", 1.49, 0.37, 1.63, 0.44},
      {"w/o FRT", 1.71, 0.43, 1.63, 0.44},
      {"w/o herding", 1.57, 0.40, 1.63, 0.44},
      {"w/o cosine", 1.51, 0.38, 1.65, 0.44}};
  return kRows;
}

int Run(const Flags& flags) {
  const Scale scale = ParseScale(flags);
  const uint64_t seed = flags.GetInt("seed", 3);
  const int reps = flags.GetInt("reps", scale == Scale::kTiny ? 1 : 3);
  std::printf("== Table II (synthetic) — scale=%s seed=%llu reps=%d ==\n",
              ScaleName(scale), static_cast<unsigned long long>(seed), reps);

  WallTimer timer;
  std::vector<MethodRow> acc;
  for (int rep = 0; rep < reps; ++rep) {
    data::SyntheticConfig data_config =
        SyntheticDataConfig(scale, seed + 1000 * rep);
    data::SyntheticStream stream = data::GenerateSyntheticStream(data_config);
    Rng split_rng(seed + 1000 * rep + 5);
    auto splits = data::SplitStream(stream.domains, &split_rng);

    causal::StrategyConfig strat;
    strat.net = SyntheticNetConfig(scale);
    strat.train = BenchTrainConfig(scale, seed + 1000 * rep + 17);

    core::CerlConfig base;
    base.net = strat.net;
    base.train = strat.train;
    // Paper: M = 10000 with 10000 units/domain. With a 60% train split that
    // budget never forces a reduction on a 2-domain stream, which would make
    // the herding ablation vacuous; use half a domain so the memory is
    // genuinely under pressure (see EXPERIMENTS.md).
    base.memory_capacity = data_config.units_per_domain / 2;

    std::vector<MethodRow> rows = RunStrategyRows(splits, strat);
    rows.push_back(RunCerlRow(splits, base, "CERL"));
    {
      core::CerlConfig ablation = base;
      ablation.use_transform = false;
      rows.push_back(RunCerlRow(splits, ablation, "w/o FRT"));
    }
    {
      core::CerlConfig ablation = base;
      ablation.use_herding = false;
      rows.push_back(RunCerlRow(splits, ablation, "w/o herding"));
    }
    {
      core::CerlConfig ablation = base;
      ablation.net.cosine_normalized_rep = false;
      rows.push_back(RunCerlRow(splits, ablation, "w/o cosine"));
    }
    {
      // Extension ablation (not in the paper's table): linear MMD instead
      // of the Wasserstein IPM — the cheaper balance penalty CFR also
      // supports.
      core::CerlConfig ablation = base;
      ablation.train.ipm = ot::IpmKind::kLinearMmd;
      rows.push_back(RunCerlRow(splits, ablation, "CERL (MMD)"));
    }
    {
      // Non-neural reference: per-arm ridge regression (T-learner), trained
      // on the union of both domains (it has no continual mechanism).
      causal::RidgeTLearner tlearner;
      const data::CausalDataset joint = data::ConcatDatasets(
          {&splits[0].train, &splits[1].train});
      MethodRow row;
      row.name = "ridge T-learner";
      row.needs_previous_raw_data = true;
      row.within_memory_budget = false;
      Status fit = tlearner.Fit(joint);
      CERL_CHECK_MSG(fit.ok(), fit.ToString().c_str());
      row.previous = tlearner.Evaluate(splits[0].test);
      row.current = tlearner.Evaluate(splits[1].test);
      rows.push_back(row);
    }
    AccumulateRows(&acc, rows);
  }
  DivideRows(&acc, reps);

  PrintMethodTable("-- two sequential synthetic domains --", acc,
                   PaperReference());
  CsvWriter csv({"scenario", "method", "prev_pehe", "prev_ate", "new_pehe",
                 "new_ate"});
  AppendRowsToCsv(&csv, "synthetic", acc);

  VerdictPrinter verdicts;
  const MethodRow& a = acc[0];
  const MethodRow& b = acc[1];
  const MethodRow& c = acc[2];
  const MethodRow& cerl = acc[3];
  const MethodRow& wo_frt = acc[4];
  const MethodRow& wo_herd = acc[5];
  const MethodRow& wo_cos = acc[6];
  verdicts.Check("CFR-A declines on new data vs CFR-C",
                 a.current.pehe > 1.1 * c.current.pehe);
  verdicts.Check("CFR-B forgets previous data vs CFR-C",
                 b.previous.pehe > 1.05 * c.previous.pehe);
  verdicts.Check("CERL beats fine-tuning on previous data",
                 cerl.previous.pehe < b.previous.pehe);
  verdicts.Check("CERL tracks CFR-C on new data (<=1.5x)",
                 cerl.current.pehe < 1.5 * c.current.pehe);
  verdicts.Check("removing FRT hurts previous-domain accuracy",
                 wo_frt.previous.pehe > cerl.previous.pehe);
  verdicts.Check("removing herding hurts previous-domain accuracy",
                 wo_herd.previous.pehe > cerl.previous.pehe);
  verdicts.Check("removing cosine norm hurts previous-domain accuracy",
                 wo_cos.previous.pehe > cerl.previous.pehe);

  std::printf("\ntotal time: %.1fs\n", timer.ElapsedSeconds());
  MaybeWriteCsv(flags, csv, "table2_synthetic.csv");
  verdicts.Summary();
  return 0;
}

}  // namespace
}  // namespace cerl::bench

int main(int argc, char** argv) {
  cerl::Flags flags(argc, argv);
  return cerl::bench::Run(flags);
}
