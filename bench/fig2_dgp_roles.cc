// Verifies Figure 2 empirically: in the synthetic DGP, instrumental
// variables are associated with the treatment but not with the outcome
// except through exposure; adjustment variables predict the outcome but not
// treatment; confounders do both; irrelevant variables do neither.
//
// Association measure: per covariate, the larger of |Pearson(x, target)|
// and |Pearson((x - mean)^2, target)| — the quadratic term is needed
// because the outcome surfaces sin^2 / cos^2 are even functions, which can
// null the purely linear correlation. Averaged per variable block and over
// several simulation seeds.
//
// Usage: fig2_dgp_roles [--scale=tiny|small|paper] [--seed=N] [--out=csv]
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "data/synthetic.h"
#include "linalg/ops.h"

namespace cerl::bench {
namespace {

struct BlockAssoc {
  const char* name;
  double with_treatment = 0.0;
  double with_outcome = 0.0;
};

double Association(const linalg::Vector& x, const linalg::Vector& target) {
  const double linear = std::fabs(linalg::PearsonCorrelation(x, target));
  const double mean = linalg::Mean(x);
  linalg::Vector squared(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    squared[i] = (x[i] - mean) * (x[i] - mean);
  }
  const double quadratic =
      std::fabs(linalg::PearsonCorrelation(squared, target));
  return std::max(linear, quadratic);
}

double MeanBlockAssociation(const data::CausalDataset& d, int begin, int end,
                            const linalg::Vector& target) {
  double acc = 0.0;
  for (int j = begin; j < end; ++j) {
    acc += Association(d.x.ColCopy(j), target);
  }
  return acc / (end - begin);
}

int Run(const Flags& flags) {
  const Scale scale = ParseScale(flags);
  const uint64_t seed = flags.GetInt("seed", 4);
  const int n_units = scale == Scale::kTiny ? 4000 : 12000;
  const int n_seeds = 3;
  std::printf(
      "== Fig. 2 (variable roles in the synthetic DGP) — n=%d x %d seeds ==\n",
      n_units, n_seeds);

  BlockAssoc blocks[] = {{"confounders (C)"},
                         {"instruments (Z)"},
                         {"adjusters (A)"},
                         {"irrelevant (I)"}};
  double propensity_sum = 0.0;

  for (int s = 0; s < n_seeds; ++s) {
    data::SyntheticConfig config;
    config.num_domains = 1;
    config.units_per_domain = n_units;
    config.seed = seed + 100 * s;
    data::SyntheticStream stream = data::GenerateSyntheticStream(config);
    const data::CausalDataset& d = stream.domains[0];
    const data::VariableLayout lay = data::LayoutOf(config);
    linalg::Vector t_vec(d.t.begin(), d.t.end());
    propensity_sum += stream.mean_propensity[0];

    const int begins[] = {lay.confounder_begin, lay.instrument_begin,
                          lay.adjuster_begin, lay.irrelevant_begin};
    const int ends[] = {lay.confounder_end, lay.instrument_end,
                        lay.adjuster_end, lay.irrelevant_end};
    for (int blk = 0; blk < 4; ++blk) {
      blocks[blk].with_treatment +=
          MeanBlockAssociation(d, begins[blk], ends[blk], t_vec) / n_seeds;
      blocks[blk].with_outcome +=
          MeanBlockAssociation(d, begins[blk], ends[blk], d.mu0) / n_seeds;
    }
  }

  std::printf("%-18s %18s %18s\n", "variable block", "assoc with T",
              "assoc with Y0");
  CsvWriter csv({"block", "assoc_with_t", "assoc_with_y0"});
  for (const auto& b : blocks) {
    std::printf("%-18s %18.4f %18.4f\n", b.name, b.with_treatment,
                b.with_outcome);
    csv.AddRow({b.name, CsvWriter::Cell(b.with_treatment),
                CsvWriter::Cell(b.with_outcome)});
  }
  std::printf("(mean propensity across seeds: %.3f)\n",
              propensity_sum / n_seeds);

  VerdictPrinter verdicts;
  const BlockAssoc& conf = blocks[0];
  const BlockAssoc& inst = blocks[1];
  const BlockAssoc& adj = blocks[2];
  const BlockAssoc& irrel = blocks[3];
  verdicts.Check("instruments: associated with T",
                 inst.with_treatment > 1.5 * irrel.with_treatment);
  verdicts.Check("instruments: weaker on outcome than adjusters",
                 inst.with_outcome < adj.with_outcome);
  verdicts.Check("adjusters: predict outcome",
                 adj.with_outcome > 1.5 * irrel.with_outcome);
  verdicts.Check("adjusters: weaker on T than instruments",
                 adj.with_treatment < inst.with_treatment);
  verdicts.Check("confounders: associated with both",
                 conf.with_treatment > 1.5 * irrel.with_treatment &&
                     conf.with_outcome > 1.5 * irrel.with_outcome);

  MaybeWriteCsv(flags, csv, "fig2_dgp_roles.csv");
  verdicts.Summary();
  return 0;
}

}  // namespace
}  // namespace cerl::bench

int main(int argc, char** argv) {
  cerl::Flags flags(argc, argv);
  return cerl::bench::Run(flags);
}
