// Reproduces Figure 3 (a) and (b): five synthetic domains arrive
// sequentially (the Fig. 4 protocol); after finishing each domain, report
// sqrt(PEHE) and eps_ATE on the pooled test sets of all seen domains, for
// CERL under several memory budgets and for the ideal strategy (retrain
// from scratch on all raw data — CFR-C). Also runs the in-text cosine-
// normalization ablation at the middle memory budget (paper: sqrt(PEHE)
// 1.80 -> 1.92, eps_ATE 0.55 -> 0.61 at M=5000).
//
// Paper memory budgets: M in {1000, 5000, 10000} of 10000 units/domain;
// the ratios (0.1 / 0.5 / 1.0 of one domain) are kept across scales.
//
// Usage: fig3ab_memory [--scale=tiny|small|paper] [--seed=N] [--out=csv]
#include <cstdio>

#include "bench_common.h"
#include "data/synthetic.h"
#include "util/timer.h"

namespace cerl::bench {
namespace {

struct SeriesPoint {
  int stage;
  double pehe;
  double ate;
};

std::vector<SeriesPoint> RunCerlSeries(
    const std::vector<data::DataSplit>& splits,
    const core::CerlConfig& config) {
  core::CerlTrainer trainer(config, splits[0].train.num_features());
  std::vector<SeriesPoint> series;
  for (int d = 0; d < static_cast<int>(splits.size()); ++d) {
    trainer.ObserveDomain(splits[d]);
    causal::StageEval eval = causal::EvaluateStage(
        d, splits,
        [&trainer](const linalg::Matrix& x) { return trainer.PredictIte(x); });
    series.push_back({d + 1, eval.pooled.pehe, eval.pooled.ate_error});
  }
  return series;
}

int Run(const Flags& flags) {
  const Scale scale = ParseScale(flags);
  const uint64_t seed = flags.GetInt("seed", 5);

  data::SyntheticConfig data_config;
  data_config.num_domains = 5;
  data_config.seed = seed;
  switch (scale) {
    case Scale::kTiny: data_config.units_per_domain = 500; break;
    case Scale::kSmall: data_config.units_per_domain = 1500; break;
    case Scale::kPaper: data_config.units_per_domain = 10000; break;
  }
  const int n = data_config.units_per_domain;
  const std::vector<std::pair<std::string, int>> budgets = {
      {"M=0.1n", n / 10}, {"M=0.5n", n / 2}, {"M=1.0n", n}};

  std::printf(
      "== Fig. 3(a,b) — 5 sequential domains, n=%d/domain, scale=%s ==\n", n,
      ScaleName(scale));
  std::printf("paper reference (M=10000, 5 domains): ideal sqPEHE ~1.8; CERL"
              " with M in {1000,5000,10000} tracks it closely\n");

  WallTimer timer;
  data::SyntheticStream stream = data::GenerateSyntheticStream(data_config);
  Rng split_rng(seed + 31);
  auto splits = data::SplitStream(stream.domains, &split_rng);

  causal::StrategyConfig strat;
  strat.net = SyntheticNetConfig(scale);
  strat.train = BenchTrainConfig(scale, seed + 41);

  // Ideal: retrain on all raw data after each domain (CFR-C).
  causal::StrategyRunResult ideal =
      RunCfrStrategy(causal::Strategy::kC, splits, strat);

  core::CerlConfig base;
  base.net = strat.net;
  base.train = strat.train;

  CsvWriter csv({"series", "stage", "pooled_pehe", "pooled_ate"});
  std::vector<std::vector<SeriesPoint>> cerl_series;
  for (const auto& [label, budget] : budgets) {
    core::CerlConfig config = base;
    config.memory_capacity = budget;
    cerl_series.push_back(RunCerlSeries(splits, config));
    for (const auto& p : cerl_series.back()) {
      csv.AddRow({label, std::to_string(p.stage), CsvWriter::Cell(p.pehe),
                  CsvWriter::Cell(p.ate)});
    }
  }
  for (const auto& stage : ideal.stages) {
    csv.AddRow({"ideal", std::to_string(stage.stage + 1),
                CsvWriter::Cell(stage.pooled.pehe),
                CsvWriter::Cell(stage.pooled.ate_error)});
  }

  // Print the two panels as columns over stages.
  for (const char* metric : {"sqrt(PEHE)", "eps_ATE"}) {
    const bool is_pehe = std::string(metric) == "sqrt(PEHE)";
    std::printf("\n-- Fig 3(%s): pooled %s after each domain --\n",
                is_pehe ? "a" : "b", metric);
    std::printf("%-10s", "stage");
    for (const auto& [label, budget] : budgets) {
      std::printf(" %10s", label.c_str());
    }
    std::printf(" %10s\n", "ideal");
    for (int d = 0; d < 5; ++d) {
      std::printf("%-10d", d + 1);
      for (const auto& series : cerl_series) {
        std::printf(" %10.3f", is_pehe ? series[d].pehe : series[d].ate);
      }
      std::printf(" %10.3f\n", is_pehe ? ideal.stages[d].pooled.pehe
                                       : ideal.stages[d].pooled.ate_error);
    }
  }

  // In-text cosine ablation at the middle budget.
  core::CerlConfig no_cosine = base;
  no_cosine.memory_capacity = budgets[1].second;
  no_cosine.net.cosine_normalized_rep = false;
  auto ablation = RunCerlSeries(splits, no_cosine);
  std::printf("\ncosine ablation at %s, stage 5: with=%.3f/%.3f "
              "without=%.3f/%.3f (paper: 1.80/0.55 -> 1.92/0.61)\n",
              budgets[1].first.c_str(), cerl_series[1][4].pehe,
              cerl_series[1][4].ate, ablation[4].pehe, ablation[4].ate);
  csv.AddRow({"M=0.5n w/o cosine", "5", CsvWriter::Cell(ablation[4].pehe),
              CsvWriter::Cell(ablation[4].ate)});

  VerdictPrinter verdicts;
  verdicts.Check("largest memory budget is at least as good as the smallest",
                 cerl_series[2][4].pehe <= cerl_series[0][4].pehe * 1.05);
  verdicts.Check("CERL (M=1.0n) tracks the ideal within 1.5x at stage 5",
                 cerl_series[2][4].pehe <
                     1.5 * ideal.stages[4].pooled.pehe + 0.05);
  verdicts.Check("no blow-up across stages for any budget",
                 cerl_series[0][4].pehe < 3.0 * cerl_series[0][0].pehe);
  verdicts.Check("removing cosine normalization hurts",
                 ablation[4].pehe > cerl_series[1][4].pehe);

  std::printf("\ntotal time: %.1fs\n", timer.ElapsedSeconds());
  MaybeWriteCsv(flags, csv, "fig3ab_memory.csv");
  verdicts.Summary();
  return 0;
}

}  // namespace
}  // namespace cerl::bench

int main(int argc, char** argv) {
  cerl::Flags flags(argc, argv);
  return cerl::bench::Run(flags);
}
