// google-benchmark microbenchmarks for the substrates backing the
// reproduction: GEMM, a full autodiff training step, Sinkhorn OT, herding
// selection, one collapsed-Gibbs LDA sweep, MVN sampling, and correlation-
// matrix generation. Run in Release mode for meaningful numbers.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "autodiff/composite.h"
#include "autodiff/ops.h"
#include "causal/herding.h"
#include "corrgen/hub_correlation.h"
#include "linalg/gemm.h"
#include "linalg/ops.h"
#include "linalg/simd.h"
#include "nn/mlp.h"
#include "nn/optim.h"
#include "ot/fused_micro_solver.h"
#include "ot/ipm.h"
#include "ot/sinkhorn.h"
#include "stats/mvn.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/tenant_store.h"
#include "stream/stream_engine.h"
#include "topics/lda_generative.h"
#include "topics/lda_gibbs.h"
#include "train/train_loop.h"
#include "util/check.h"
#include "util/rng.h"

namespace cerl {
namespace {

linalg::Matrix RandomMatrix(Rng* rng, int rows, int cols) {
  linalg::Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal();
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  linalg::Matrix a = RandomMatrix(&rng, n, n);
  linalg::Matrix b = RandomMatrix(&rng, n, n);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::Gemm(linalg::Trans::kNo, linalg::Trans::kNo, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_AutodiffTrainingStep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(2);
  nn::MlpConfig config;
  config.dims = {100, 48, 16, 1};
  nn::Mlp mlp(&rng, config);
  nn::Adam opt(mlp.Parameters(), 1e-3);
  linalg::Matrix x = RandomMatrix(&rng, batch, 100);
  linalg::Matrix y = RandomMatrix(&rng, batch, 1);
  autodiff::Tape tape;
  for (auto _ : state) {
    tape.Reset();
    autodiff::Var out = mlp.Forward(&tape, tape.ConstantView(&x));
    autodiff::Var loss = autodiff::MseLoss(out, tape.ConstantView(&y));
    opt.ZeroGrad();
    tape.Backward(loss);
    opt.Step();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_AutodiffTrainingStep)->Arg(64)->Arg(256);

// Proves the tape-arena reuse sub-win in isolation: the same MLP training
// step recorded on a fresh Tape each iteration (allocating every node)
// versus on one persistent Tape via Reset() (steady state allocates
// nothing; see Tape::arena_allocations).
void TapeStep(nn::Mlp* mlp, nn::Adam* opt, autodiff::Tape* tape,
              const linalg::Matrix& x, const linalg::Matrix& y) {
  autodiff::Var out = mlp->Forward(tape, tape->ConstantView(&x));
  autodiff::Var loss = autodiff::MseLoss(out, tape->ConstantView(&y));
  opt->ZeroGrad();
  tape->Backward(loss);
  opt->Step();
}

void BM_TapeReuse(benchmark::State& state) {
  const bool reuse = state.range(0) != 0;
  Rng rng(2);
  nn::MlpConfig config;
  config.dims = {100, 48, 16, 1};
  nn::Mlp mlp(&rng, config);
  nn::Adam opt(mlp.Parameters(), 1e-3);
  linalg::Matrix x = RandomMatrix(&rng, 128, 100);
  linalg::Matrix y = RandomMatrix(&rng, 128, 1);
  autodiff::Tape persistent;
  for (auto _ : state) {
    if (reuse) {
      persistent.Reset();
      TapeStep(&mlp, &opt, &persistent, x, y);
    } else {
      autodiff::Tape fresh;
      TapeStep(&mlp, &opt, &fresh, x, y);
    }
  }
  state.SetLabel(reuse ? "reset_reuse" : "fresh_tape");
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_TapeReuse)->Arg(0)->Arg(1);

void BM_TrainLoopEpoch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  nn::MlpConfig config;
  config.dims = {100, 48, 16, 1};
  nn::Mlp mlp(&rng, config);
  linalg::Matrix x = RandomMatrix(&rng, n, 100);
  linalg::Matrix y = RandomMatrix(&rng, n, 1);
  train::LoopOptions options;
  options.epochs = 1;
  options.batch_size = 128;
  options.patience = 2;
  for (auto _ : state) {
    train::TrainLoop loop(options, mlp.Parameters());
    train::TrainStats stats = loop.Run(
        n, {&x, &y},
        [&](autodiff::Tape* tape, train::IndexSpan,
            const std::vector<linalg::Matrix>& gathered) {
          autodiff::Var xb = tape->ConstantView(&gathered[0]);
          autodiff::Var yb = tape->ConstantView(&gathered[1]);
          return autodiff::MseLoss(mlp.Forward(tape, xb), yb);
        },
        [] { return 1.0; });
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TrainLoopEpoch)->Arg(1000)->Arg(4000);

void BM_GatherRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int cols = 100;
  Rng rng(11);
  linalg::Matrix x = RandomMatrix(&rng, n, cols);
  std::vector<int> idx = rng.Permutation(n);
  idx.resize(n / 2);
  linalg::Matrix out;
  for (auto _ : state) {
    x.GatherRowsInto(idx.data(), static_cast<int>(idx.size()), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(idx.size()) * cols *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_GatherRows)->Arg(1000)->Arg(20000);

void BM_MatVec(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(12);
  linalg::Matrix a = RandomMatrix(&rng, n, n);
  linalg::Vector x(n, 0.5);
  for (auto _ : state) {
    linalg::Vector y = linalg::MatVec(a, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n);
}
BENCHMARK(BM_MatVec)->Arg(256)->Arg(1024);

// The dispatched batch exponential — the dominant op of every cold Gibbs
// kernel build. The label records which kernel table ran (scalar / avx2).
void BM_VecExp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(14);
  std::vector<double> in(n), out(n);
  for (double& x : in) x = rng.Uniform(-20.0, 0.0);
  for (auto _ : state) {
    linalg::VecExp(in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(linalg::simd::Kernels().name);
}
BENCHMARK(BM_VecExp)->Arg(256)->Arg(4096)->Arg(65536);

// N micro Sinkhorn solves (well below min_parallel_elements), the
// per-stream Wasserstein-penalty workload at high stream counts.
// Arg(1) = 1: stacked through the fused micro-solver (groups of 4 lanes,
// one batched VecExp / lane4_dot sweep). Arg(1) = 0: sequential solo
// solves. Warm starts are dropped every iteration so both sides run full
// cold solves; results are bit-identical by the fused solver's contract.
void BM_FusedMicroSolve(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const bool fused = state.range(1) != 0;
  Rng rng(15);
  std::vector<linalg::Matrix> costs;
  for (int i = 0; i < count; ++i) {
    // Uniform(0, 1) costs keep every solve well-conditioned, isolating the
    // fused-sweep speedup: a degenerate problem ejects to the identical
    // solo cascade and costs the same on both sides, only adding noise.
    linalg::Matrix cost(12, 8);
    for (int64_t e = 0; e < cost.size(); ++e) {
      cost.data()[e] = rng.Uniform(0.0, 1.0);
    }
    costs.push_back(std::move(cost));
  }
  ot::SinkhornConfig config;
  std::vector<ot::SinkhornWorkspace> ws(count);
  std::vector<const linalg::Matrix*> cost_ptrs;
  std::vector<ot::SinkhornConfig> configs(count, config);
  std::vector<ot::SinkhornWorkspace*> ws_ptrs;
  for (int i = 0; i < count; ++i) {
    cost_ptrs.push_back(&costs[i]);
    ws_ptrs.push_back(&ws[i]);
  }
  for (auto _ : state) {
    for (auto& w : ws) w.DropWarmStart();
    if (fused) {
      auto results = ot::SolveSinkhornMicroBatch(cost_ptrs, configs, ws_ptrs);
      benchmark::DoNotOptimize(results.data());
    } else {
      for (int i = 0; i < count; ++i) {
        auto info = ot::SolveSinkhorn(costs[i], config, &ws[i]);
        benchmark::DoNotOptimize(info);
      }
    }
  }
  state.SetLabel(fused ? "fused" : "sequential");
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_FusedMicroSolve)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1});

// Cold-start Sinkhorn solves. Arg(1): the workspace solver (arena buffers,
// parallel kernels, vectorized exp; warm start disabled so every solve runs
// the full iteration). Arg(0): the allocate-per-call reference solver.
void BM_Sinkhorn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool workspace = state.range(1) != 0;
  Rng rng(3);
  linalg::Matrix a = RandomMatrix(&rng, n, 16);
  linalg::Matrix b = RandomMatrix(&rng, n, 16);
  linalg::Matrix cost = linalg::PairwiseSquaredDistances(a, b);
  ot::SinkhornConfig config;
  config.warm_start = false;
  ot::SinkhornWorkspace ws;
  for (auto _ : state) {
    if (workspace) {
      auto info = ot::SolveSinkhorn(cost, config, &ws);
      benchmark::DoNotOptimize(info);
    } else {
      auto result = ot::SolveSinkhorn(cost, config);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetLabel(workspace ? "workspace_cold" : "reference");
}
BENCHMARK(BM_Sinkhorn)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1});

// Warm-started steady state: the cost drifts slightly each iteration (as
// representations do between SGD steps) and the duals carry over.
void BM_SinkhornWarm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  linalg::Matrix a = RandomMatrix(&rng, n, 16);
  linalg::Matrix b = RandomMatrix(&rng, n, 16);
  ot::SinkhornConfig config;
  ot::SinkhornWorkspace ws;
  for (auto _ : state) {
    state.PauseTiming();
    for (int64_t i = 0; i < a.size(); ++i) {
      a.data()[i] += rng.Normal(0.0, 1e-3);
    }
    linalg::Matrix cost = linalg::PairwiseSquaredDistances(a, b);
    state.ResumeTiming();
    auto info = ot::SolveSinkhorn(cost, config, &ws);
    benchmark::DoNotOptimize(info);
  }
}
BENCHMARK(BM_SinkhornWarm)->Arg(32)->Arg(64)->Arg(128);

void BM_HerdingSelect(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  linalg::Matrix reps = RandomMatrix(&rng, n, 32);
  for (auto _ : state) {
    auto idx = causal::HerdingSelect(reps, n / 10);
    benchmark::DoNotOptimize(idx);
  }
}
BENCHMARK(BM_HerdingSelect)->Arg(500)->Arg(2000);

void BM_LdaGibbsSweep(benchmark::State& state) {
  Rng rng(5);
  topics::GenerativeLdaConfig gen_config;
  gen_config.num_docs = 200;
  gen_config.vocab_size = 300;
  gen_config.num_topics = 20;
  gen_config.doc_length_mean = 60.0;
  auto corpus = topics::GenerateLdaCorpus(gen_config, &rng);
  topics::LdaGibbsConfig config;
  config.num_topics = 20;
  config.iterations = 1;  // One sweep per iteration.
  for (auto _ : state) {
    Rng train_rng(6);
    auto model = topics::TrainLdaGibbs(corpus.corpus, config, &train_rng);
    benchmark::DoNotOptimize(model.doc_topic().data());
  }
  state.SetItemsProcessed(state.iterations() * corpus.corpus.num_tokens());
}
BENCHMARK(BM_LdaGibbsSweep);

void BM_MvnSample(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<corrgen::HubBlockSpec> specs(1);
  specs[0].size = dim;
  auto corr = corrgen::GenerateCorrelationMatrix(specs, 0.3, 20, &rng);
  auto mvn = stats::MultivariateNormal::Create(linalg::Vector(dim, 0.0),
                                               corr.value());
  for (auto _ : state) {
    auto x = mvn.value().Sample(&rng);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvnSample)->Arg(100);

void BM_CorrelationMatrixGeneration(benchmark::State& state) {
  Rng rng(8);
  std::vector<corrgen::HubBlockSpec> specs(4);
  const int sizes[] = {35, 10, 20, 35};
  for (int i = 0; i < 4; ++i) specs[i].size = sizes[i];
  for (auto _ : state) {
    auto corr = corrgen::GenerateCorrelationMatrix(specs, 0.5, 50, &rng);
    benchmark::DoNotOptimize(corr);
  }
}
BENCHMARK(BM_CorrelationMatrixGeneration);

// One full balancing-penalty training step as the CFR/CERL loss builders
// run it: persistent tape + Sinkhorn workspace, forward, backward, and a
// small SGD drift of the representations between steps (which is what the
// warm-started duals exploit).
void BM_WassersteinPenaltyStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  autodiff::Parameter reps(RandomMatrix(&rng, n, 16), "reps");
  linalg::Matrix fixed = RandomMatrix(&rng, n, 16);
  ot::SinkhornConfig config;
  autodiff::Tape tape;
  ot::SinkhornWorkspace ws;
  for (auto _ : state) {
    tape.Reset();
    autodiff::Var pen = ot::WassersteinPenalty(
        tape.Param(&reps), tape.ConstantView(&fixed), config, &ws);
    reps.ZeroGrad();
    tape.Backward(pen);
    for (int64_t i = 0; i < reps.value.size(); ++i) {
      reps.value.data()[i] -= 1e-3 * reps.grad.data()[i];
    }
  }
}
BENCHMARK(BM_WassersteinPenaltyStep)->Arg(64)->Arg(128);

// Shared CERL-workload substrate for the engine/checkpoint benches: a toy
// shifted domain and a small fast config.
data::DataSplit BenchSplit(Rng* rng, int units, int features, double shift) {
  data::CausalDataset dataset;
  dataset.x = RandomMatrix(rng, units, features);
  dataset.t.resize(units);
  dataset.y.resize(units);
  dataset.mu0.assign(units, 0.0);
  dataset.mu1.assign(units, 1.0);
  for (int i = 0; i < units; ++i) {
    dataset.x(i, 0) += shift;
    dataset.t[i] = rng->Uniform() < 0.5 ? 1 : 0;
    dataset.y[i] = std::sin(dataset.x(i, 0)) + dataset.t[i] +
                   0.1 * rng->Normal();
  }
  return data::SplitDataset(dataset, rng);
}

core::CerlConfig BenchCerlConfig(uint64_t seed) {
  core::CerlConfig config;
  config.net.rep_hidden = {16};
  config.net.rep_dim = 8;
  config.net.head_hidden = {8};
  config.train.epochs = 6;
  config.train.batch_size = 64;
  config.train.patience = 6;
  config.train.alpha = 0.2;
  config.train.seed = seed;
  config.memory_capacity = 200;
  return config;
}

// End-to-end domain ingest through the stream engine: `streams` independent
// CERL tenants, each fed two shifted domains. items/s is aggregate domains
// ingested per second — compare Arg(4)/Arg(8) against 4x/8x the Arg(1)
// rate for the multiplexing win (the engine is bit-identical to serial
// per-stream, so only scheduling differs). On a single hardware thread the
// rates match; the concurrency gain needs multicore.
void StreamEngineIngestBody(benchmark::State& state, bool health_guards) {
  const int streams = static_cast<int>(state.range(0));
  const int kDomains = 2;
  const int kUnits = 240;
  const int kFeatures = 8;

  // Per-stream toy domains (shifted between the two arrivals).
  std::vector<std::vector<data::DataSplit>> domains(streams);
  for (int s = 0; s < streams; ++s) {
    Rng rng(40 + s);
    for (int d = 0; d < kDomains; ++d) {
      domains[s].push_back(BenchSplit(&rng, kUnits, kFeatures, 0.8 * d));
    }
  }

  core::CerlConfig config = BenchCerlConfig(0);
  config.train.async_validation = true;
  config.memory_capacity = 80;

  stream::StreamEngineOptions options;
  options.health_guards = health_guards;
  for (auto _ : state) {
    stream::StreamEngine engine(options);
    for (int s = 0; s < streams; ++s) {
      config.train.seed = 50 + s;
      const int id = engine.AddStream("bench", config, kFeatures);
      for (const data::DataSplit& split : domains[s]) {
        CERL_CHECK(engine.PushDomain(id, split).ok());
      }
    }
    engine.Drain();
  }
  state.SetItemsProcessed(state.iterations() * streams * kDomains);
  state.SetLabel(std::to_string(streams) + "_streams");
}

void BM_StreamEngineIngest(benchmark::State& state) {
  StreamEngineIngestBody(state, /*health_guards=*/true);
}

// Same workload with the fault-isolation plane off: no finite-ness sweep of
// parameters/memory after each domain, no last-good checkpoint capture.
// Paired against BM_StreamEngineIngest/4 by the CI gate
// (tools/compare_bench.py --pair) to keep the guard overhead under a few
// percent of ingest cost — measured ~1-2% (the sweep and serialize are tiny
// next to a TrainStage).
void BM_StreamEngineIngestNoGuards(benchmark::State& state) {
  StreamEngineIngestBody(state, /*health_guards=*/false);
}
BENCHMARK(BM_StreamEngineIngestNoGuards)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Checkpoint substrate: in-memory serialize/deserialize of a trained
// trainer (the per-stream cost inside an engine snapshot) and a full
// engine SaveSnapshot including the crash-safe file publish. The save runs
// against a live engine at a domain boundary, so real_time here is the
// serving-path latency a rolling restart pays per snapshot.
void BM_CheckpointSerialize(benchmark::State& state) {
  const int kFeatures = 8;
  Rng rng(71);
  core::CerlTrainer trainer(BenchCerlConfig(61), kFeatures);
  trainer.ObserveDomain(BenchSplit(&rng, 400, kFeatures, 0.0));
  trainer.ObserveDomain(BenchSplit(&rng, 400, kFeatures, 0.8));
  std::string payload;
  for (auto _ : state) {
    Status s = trainer.SerializeCheckpoint(&payload);
    CERL_CHECK(s.ok());
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_CheckpointSerialize);

void BM_CheckpointDeserialize(benchmark::State& state) {
  const int kFeatures = 8;
  Rng rng(72);
  core::CerlTrainer trainer(BenchCerlConfig(62), kFeatures);
  trainer.ObserveDomain(BenchSplit(&rng, 400, kFeatures, 0.0));
  trainer.ObserveDomain(BenchSplit(&rng, 400, kFeatures, 0.8));
  std::string payload;
  CERL_CHECK(trainer.SerializeCheckpoint(&payload).ok());
  for (auto _ : state) {
    core::CerlTrainer restored(BenchCerlConfig(62), kFeatures);
    Status s = restored.DeserializeCheckpoint(payload);
    CERL_CHECK(s.ok());
    benchmark::DoNotOptimize(restored.stages_seen());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_CheckpointDeserialize);

void BM_EngineSnapshotSave(benchmark::State& state) {
  const int kStreams = 4;
  const int kFeatures = 8;
  stream::StreamEngineOptions options;
  options.num_workers = 2;
  stream::StreamEngine engine(options);
  for (int s = 0; s < kStreams; ++s) {
    Rng rng(90 + s);
    const int id =
        engine.AddStream("bench", BenchCerlConfig(80 + s), kFeatures);
    engine.PushDomain(id, BenchSplit(&rng, 300, kFeatures, 0.0));
  }
  engine.Drain();
  const std::string path = "/tmp/cerl_bench.snap";
  for (auto _ : state) {
    Status s = engine.SaveSnapshot(path);
    CERL_CHECK(s.ok());
  }
  state.SetItemsProcessed(state.iterations() * kStreams);
}
BENCHMARK(BM_EngineSnapshotSave);

// The snapshot-fence O(dirty) claim, measured: a 64-tenant engine where 4
// tenants train new domains between snapshots. serialize_ms (the fence's
// serialization window, excluding the disk write) is the gated counter.
// Dirty arm: blob reuse on — retrained tenants refresh their last-good
// capture on their own worker at domain completion, so the fence appends 64
// cached blobs without touching any trainer. Full arm: reuse off — the
// fence re-serializes all 64 trainers, the pre-storage-engine behavior. The
// CI pair gate holds the dirty arm under 0.20x of the full arm's
// serialize_ms (the >=5x acceptance target), same-run and
// machine-independent. Training between saves runs outside the timer.
void EngineSnapshotFenceBody(benchmark::State& state, bool reuse) {
  const int kStreams = 64;
  const int kDirty = 4;
  const int kFeatures = 8;
  core::CerlConfig config = BenchCerlConfig(0);
  // A realistically sized model + memory bank: the trainer blob is then the
  // bulk of the snapshot, which is what separates the arms (the full
  // rewrite re-serializes and FNV-checksums every tenant's blob; the reuse
  // arm appends each cached blob with one memcpy).
  config.net.rep_hidden = {48, 48};
  config.net.rep_dim = 16;
  config.net.head_hidden = {24};
  config.train.epochs = 2;
  config.memory_capacity = 200;
  stream::StreamEngineOptions options;
  options.num_workers = 4;
  options.snapshot_reuse_blobs = reuse;
  stream::StreamEngine engine(options);
  std::vector<Rng> rngs;
  for (int s = 0; s < kStreams; ++s) {
    rngs.emplace_back(700 + s);
    config.train.seed = 800 + s;
    const int id = engine.AddStream("tenant", config, kFeatures);
    engine.PushDomain(id, BenchSplit(&rngs[s], 100, kFeatures, 0.0));
  }
  engine.Drain();
  const std::string path = "/tmp/cerl_bench_fence.snap";
  double total_serialize_ms = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int d = 0; d < kDirty; ++d) {
      CERL_CHECK(engine.PushDomain(d, BenchSplit(&rngs[d], 100, kFeatures,
                                                 0.4)).ok());
    }
    engine.Drain();
    state.ResumeTiming();
    stream::StreamEngine::SnapshotInfo info;
    CERL_CHECK(engine.SaveSnapshot(path, &info).ok());
    total_serialize_ms += info.serialize_ms;
  }
  std::remove(path.c_str());
  state.counters["serialize_ms"] = benchmark::Counter(
      total_serialize_ms / static_cast<double>(state.iterations()));
  state.SetLabel(reuse ? "blob_reuse" : "full_rewrite");
  state.SetItemsProcessed(state.iterations() * kStreams);
}

void BM_EngineSnapshotDirty(benchmark::State& state) {
  EngineSnapshotFenceBody(state, /*reuse=*/true);
}
BENCHMARK(BM_EngineSnapshotDirty)->Unit(benchmark::kMillisecond);

void BM_EngineSnapshotFull(benchmark::State& state) {
  EngineSnapshotFenceBody(state, /*reuse=*/false);
}
BENCHMARK(BM_EngineSnapshotFull)->Unit(benchmark::kMillisecond);

// The storage cost of one tenant residency cycle: spill (TenantStore::Put
// of a real serialized trainer blob through the buffer pool) plus
// fault-back (Get + Erase). The pool is sized below the blob's page count,
// so the cycle exercises eviction and writeback, not just cache hits —
// bytes/s here is the spill bandwidth a cold-tenant eviction actually
// sees. The trainer serialization itself is benched separately
// (BM_CheckpointSerialize); this isolates the paged-store half.
void BM_TenantSpillFaultBack(benchmark::State& state) {
  const int kFeatures = 8;
  Rng rng(73);
  core::CerlTrainer trainer(BenchCerlConfig(63), kFeatures);
  trainer.ObserveDomain(BenchSplit(&rng, 400, kFeatures, 0.0));
  trainer.ObserveDomain(BenchSplit(&rng, 400, kFeatures, 0.8));
  std::string blob;
  CERL_CHECK(trainer.SerializeCheckpoint(&blob).ok());

  const std::string path = "/tmp/cerl_bench_spill.store";
  std::remove(path.c_str());
  auto disk = storage::DiskManager::Open(path);
  CERL_CHECK(disk.ok());
  storage::BufferPool pool(disk.value().get(), 8);
  storage::TenantStore store(&pool);
  for (auto _ : state) {
    CERL_CHECK(store.Put(7, blob).ok());
    auto back = store.Get(7);
    CERL_CHECK(back.ok());
    CERL_CHECK(back.value().size() == blob.size());
    CERL_CHECK(store.Erase(7).ok());
  }
  state.SetBytesProcessed(state.iterations() * 2 *
                          static_cast<int64_t>(blob.size()));
  state.counters["blob_kb"] = benchmark::Counter(
      static_cast<double>(blob.size()) / 1024.0);
  std::remove(path.c_str());
}
BENCHMARK(BM_TenantSpillFaultBack);

BENCHMARK(BM_StreamEngineIngest)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_WassersteinPenaltyBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(9);
  autodiff::Parameter reps(RandomMatrix(&rng, n, 16), "reps");
  linalg::Matrix fixed = RandomMatrix(&rng, n, 16);
  ot::SinkhornConfig config;
  for (auto _ : state) {
    autodiff::Tape tape;
    autodiff::Var pen = ot::WassersteinPenalty(
        tape.Param(&reps), tape.Constant(fixed), config);
    reps.ZeroGrad();
    tape.Backward(pen);
    benchmark::DoNotOptimize(reps.grad.data());
  }
}
BENCHMARK(BM_WassersteinPenaltyBackward)->Arg(64);

}  // namespace
}  // namespace cerl

BENCHMARK_MAIN();
