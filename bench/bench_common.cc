#include "bench_common.h"

#include <cstdio>

#include "util/check.h"
#include "util/logging.h"

namespace cerl::bench {

Scale ParseScale(const Flags& flags) {
  const std::string s = flags.GetString("scale", "small");
  if (s == "tiny") return Scale::kTiny;
  if (s == "small") return Scale::kSmall;
  if (s == "paper") return Scale::kPaper;
  CERL_CHECK_MSG(false, "unknown --scale (want tiny|small|paper)");
  return Scale::kSmall;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kTiny: return "tiny";
    case Scale::kSmall: return "small";
    case Scale::kPaper: return "paper";
  }
  return "?";
}

std::vector<MethodRow> RunStrategyRows(
    const std::vector<data::DataSplit>& splits,
    const causal::StrategyConfig& config) {
  CERL_CHECK_EQ(splits.size(), 2u);
  std::vector<MethodRow> rows;
  for (causal::Strategy s :
       {causal::Strategy::kA, causal::Strategy::kB, causal::Strategy::kC}) {
    causal::StrategyRunResult run = RunCfrStrategy(s, splits, config);
    MethodRow row;
    row.name = causal::StrategyName(s);
    row.previous = run.final_stage().per_domain[0];
    row.current = run.final_stage().per_domain[1];
    // Resource profile (paper Table I "Performance Summary"): A and B keep a
    // bounded footprint; C must retain all previous raw data.
    row.needs_previous_raw_data = (s == causal::Strategy::kC);
    row.within_memory_budget = (s != causal::Strategy::kC);
    rows.push_back(row);
  }
  return rows;
}

MethodRow RunCerlRow(const std::vector<data::DataSplit>& splits,
                     const core::CerlConfig& config, std::string name) {
  CERL_CHECK_EQ(splits.size(), 2u);
  core::CerlTrainer trainer(config, splits[0].train.num_features());
  trainer.ObserveDomain(splits[0]);
  trainer.ObserveDomain(splits[1]);
  MethodRow row;
  row.name = std::move(name);
  row.previous = trainer.Evaluate(splits[0].test);
  row.current = trainer.Evaluate(splits[1].test);
  row.needs_previous_raw_data = false;
  row.within_memory_budget = true;
  return row;
}

void PrintMethodTable(const std::string& title,
                      const std::vector<MethodRow>& rows,
                      const std::vector<PaperRow>& paper_reference) {
  std::printf("\n%s\n", title.c_str());
  std::printf(
      "%-18s %13s %13s %13s %13s  %-10s\n", "method", "prev sqPEHE",
      "prev eATE", "new sqPEHE", "new eATE", "resources");
  for (const auto& row : rows) {
    std::printf("%-18s %13.3f %13.3f %13.3f %13.3f  %-10s\n",
                row.name.c_str(), row.previous.pehe, row.previous.ate_error,
                row.current.pehe, row.current.ate_error,
                row.needs_previous_raw_data ? "all data" : "bounded");
  }
  if (!paper_reference.empty()) {
    std::printf("  -- paper reference --\n");
    for (const auto& ref : paper_reference) {
      std::printf("  %-16s %13.2f %13.2f %13.2f %13.2f\n", ref.name,
                  ref.prev_pehe, ref.prev_ate, ref.new_pehe, ref.new_ate);
    }
  }
}


void AccumulateRows(std::vector<MethodRow>* acc,
                    const std::vector<MethodRow>& rows) {
  if (acc->empty()) {
    *acc = rows;
    return;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    (*acc)[i].previous.pehe += rows[i].previous.pehe;
    (*acc)[i].previous.ate_error += rows[i].previous.ate_error;
    (*acc)[i].current.pehe += rows[i].current.pehe;
    (*acc)[i].current.ate_error += rows[i].current.ate_error;
  }
}

void DivideRows(std::vector<MethodRow>* rows, int n) {
  for (auto& row : *rows) {
    row.previous.pehe /= n;
    row.previous.ate_error /= n;
    row.current.pehe /= n;
    row.current.ate_error /= n;
  }
}

void AppendRowsToCsv(CsvWriter* csv, const std::string& scenario,
                     const std::vector<MethodRow>& rows) {
  for (const auto& row : rows) {
    csv->AddRow({scenario, row.name, CsvWriter::Cell(row.previous.pehe),
                 CsvWriter::Cell(row.previous.ate_error),
                 CsvWriter::Cell(row.current.pehe),
                 CsvWriter::Cell(row.current.ate_error)});
  }
}

void VerdictPrinter::Check(const std::string& claim, bool holds) {
  std::printf("  [%s] %s\n", holds ? "PASS" : "MISS", claim.c_str());
  (holds ? passed_ : failed_)++;
}

int VerdictPrinter::Summary() const {
  std::printf("shape verdicts: %d passed, %d missed\n", passed_, failed_);
  return failed_;
}

void MaybeWriteCsv(const Flags& flags, const CsvWriter& csv,
                   const std::string& default_path) {
  const std::string path = flags.GetString("out", default_path);
  if (path.empty()) return;
  Status status = csv.WriteFile(path);
  if (status.ok()) {
    std::printf("wrote %d rows to %s\n", csv.num_rows(), path.c_str());
  } else {
    std::printf("CSV write failed: %s\n", status.ToString().c_str());
  }
}

causal::TrainConfig BenchTrainConfig(Scale scale, uint64_t seed) {
  causal::TrainConfig t;
  t.seed = seed;
  t.batch_size = 64;
  t.learning_rate = 3e-3;
  t.alpha = 0.3;
  t.lambda = 1e-5;
  switch (scale) {
    case Scale::kTiny:
      t.epochs = 30;
      t.patience = 30;
      break;
    case Scale::kSmall:
      t.epochs = 60;
      t.patience = 20;
      break;
    case Scale::kPaper:
      t.epochs = 150;
      t.patience = 30;
      t.batch_size = 128;
      break;
  }
  return t;
}

causal::NetConfig TopicNetConfig(Scale scale) {
  causal::NetConfig net;
  switch (scale) {
    case Scale::kTiny:
      net.rep_hidden = {24};
      net.rep_dim = 10;
      net.head_hidden = {12};
      break;
    case Scale::kSmall:
      net.rep_hidden = {48};
      net.rep_dim = 24;
      net.head_hidden = {24};
      break;
    case Scale::kPaper:
      net.rep_hidden = {200};
      net.rep_dim = 100;
      net.head_hidden = {100};
      break;
  }
  return net;
}

causal::NetConfig SyntheticNetConfig(Scale scale) {
  causal::NetConfig net;
  switch (scale) {
    case Scale::kTiny:
      net.rep_hidden = {24};
      net.rep_dim = 10;
      net.head_hidden = {12};
      break;
    case Scale::kSmall:
      net.rep_hidden = {48};
      net.rep_dim = 16;
      net.head_hidden = {24};
      break;
    case Scale::kPaper:
      net.rep_hidden = {100, 50};
      net.rep_dim = 25;
      net.head_hidden = {50};
      break;
  }
  return net;
}

}  // namespace cerl::bench
