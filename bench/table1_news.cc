// Reproduces Table I (News half): sqrt(PEHE) and eps_ATE of CFR-A/B/C and
// CERL on two sequential News-like domains under substantial / moderate /
// no domain shift, with the paper's reference numbers printed alongside.
//
// Expected shape (paper): under shift, CFR-A degrades on the NEW domain,
// CFR-B forgets the PREVIOUS domain, CFR-C is the ideal (but needs all raw
// data), and CERL tracks CFR-C without accessing previous raw data. Under
// no shift all methods coincide.
//
// Usage: table1_news [--scale=tiny|small|paper] [--seed=N] [--out=csv]
#include <cstdio>

#include "bench_common.h"
#include "data/topic_benchmark.h"
#include "util/timer.h"

namespace cerl::bench {
namespace {

data::TopicBenchmarkConfig NewsConfig(Scale scale) {
  switch (scale) {
    case Scale::kTiny: {
      data::TopicBenchmarkConfig c;
      c.corpus.num_docs = 600;
      c.corpus.vocab_size = 160;
      c.corpus.num_topics = 10;
      c.corpus.doc_length_mean = 40.0;
      c.lda.num_topics = 10;
      c.lda.iterations = 25;
      return c;
    }
    case Scale::kSmall:
      return data::NewsConfigSmall();
    case Scale::kPaper:
      return data::NewsConfigPaper();
  }
  return data::NewsConfigSmall();
}

int MemoryBudget(Scale scale, int num_docs) {
  // Paper: M = 500 of 5000 documents (10%); keep the ratio at lower scales.
  return scale == Scale::kPaper ? 500 : std::max(50, num_docs / 10);
}

const std::vector<PaperRow>& PaperReference(data::DomainShift shift) {
  static const std::vector<PaperRow> kSubstantial = {
      {"CFR-A", 2.49, 0.80, 3.62, 1.18},
      {"CFR-B", 3.23, 1.06, 2.71, 0.91},
      {"CFR-C", 2.51, 0.82, 2.70, 0.92},
      {"CERL", 2.55, 0.84, 2.71, 0.91}};
  static const std::vector<PaperRow> kModerate = {
      {"CFR-A", 2.58, 0.85, 3.06, 1.02},
      {"CFR-B", 2.98, 0.99, 2.65, 0.92},
      {"CFR-C", 2.56, 0.85, 2.63, 0.90},
      {"CERL", 2.59, 0.86, 2.66, 0.92}};
  static const std::vector<PaperRow> kNone = {
      {"CFR-A", 2.58, 0.87, 2.62, 0.88},
      {"CFR-B", 2.60, 0.88, 2.60, 0.87},
      {"CFR-C", 2.58, 0.87, 2.59, 0.87},
      {"CERL", 2.59, 0.87, 2.60, 0.87}};
  switch (shift) {
    case data::DomainShift::kSubstantial: return kSubstantial;
    case data::DomainShift::kModerate: return kModerate;
    case data::DomainShift::kNone: return kNone;
  }
  return kNone;
}

int Run(const Flags& flags) {
  const Scale scale = ParseScale(flags);
  const uint64_t seed = flags.GetInt("seed", 1);
  const int reps = flags.GetInt("reps", scale == Scale::kTiny ? 1 : 2);
  std::printf("== Table I (News) — scale=%s seed=%llu reps=%d ==\n",
              ScaleName(scale), static_cast<unsigned long long>(seed), reps);

  CsvWriter csv({"scenario", "method", "prev_pehe", "prev_ate", "new_pehe",
                 "new_ate"});
  VerdictPrinter verdicts;
  WallTimer timer;

  // CFR-A new-domain error per scenario, to check shift monotonicity.
  std::vector<double> cfr_a_new_by_shift;

  for (data::DomainShift shift :
       {data::DomainShift::kSubstantial, data::DomainShift::kModerate,
        data::DomainShift::kNone}) {
    data::TopicBenchmarkConfig config = NewsConfig(scale);
    config.shift = shift;
    core::CerlConfig cerl_config;
    std::vector<MethodRow> rows;
    int domain_units[2] = {0, 0};
    for (int rep = 0; rep < reps; ++rep) {
      config.seed = seed + 1000 * rep;
      data::TopicBenchmark bench = data::GenerateTopicBenchmark(config);
      domain_units[0] = bench.domains[0].num_units();
      domain_units[1] = bench.domains[1].num_units();
      Rng split_rng(seed + 101 + rep);
      auto splits = data::SplitStream(bench.domains, &split_rng);

      causal::StrategyConfig strat;
      strat.net = TopicNetConfig(scale);
      strat.train = BenchTrainConfig(scale, seed + 7 + 31 * rep);

      cerl_config.net = strat.net;
      cerl_config.train = strat.train;
      cerl_config.memory_capacity =
          MemoryBudget(scale, config.corpus.num_docs);

      std::vector<MethodRow> rep_rows = RunStrategyRows(splits, strat);
      rep_rows.push_back(RunCerlRow(splits, cerl_config));
      AccumulateRows(&rows, rep_rows);
    }
    DivideRows(&rows, reps);
    const MethodRow& a = rows[0];
    const MethodRow& b = rows[1];
    const MethodRow& c = rows[2];
    const MethodRow& cerl = rows[3];

    char title[160];
    std::snprintf(title, sizeof(title),
                  "-- %s shift (domains %d/%d units, M=%d) --",
                  data::DomainShiftName(shift), domain_units[0],
                  domain_units[1], cerl_config.memory_capacity);
    PrintMethodTable(title, rows, PaperReference(shift));
    AppendRowsToCsv(&csv, data::DomainShiftName(shift), rows);
    cfr_a_new_by_shift.push_back(a.current.pehe);

    if (shift != data::DomainShift::kNone) {
      verdicts.Check(std::string(data::DomainShiftName(shift)) +
                         ": CFR-A declines on new data vs CFR-C",
                     a.current.pehe > 1.1 * c.current.pehe);
      verdicts.Check(std::string(data::DomainShiftName(shift)) +
                         ": CFR-B forgets previous data vs CFR-C",
                     b.previous.pehe > 1.1 * c.previous.pehe);
      verdicts.Check(std::string(data::DomainShiftName(shift)) +
                         ": CERL beats fine-tuning on previous data",
                     cerl.previous.pehe < b.previous.pehe);
      verdicts.Check(std::string(data::DomainShiftName(shift)) +
                         ": CERL tracks CFR-C on new data (<=1.5x)",
                     cerl.current.pehe < 1.5 * c.current.pehe);
    } else {
      const double lo = std::min(std::min(a.current.pehe, b.current.pehe),
                                 std::min(c.current.pehe, cerl.current.pehe));
      const double hi = std::max(std::max(a.current.pehe, b.current.pehe),
                                 std::max(c.current.pehe, cerl.current.pehe));
      verdicts.Check("none: all methods similar on new data (<=1.5x spread)",
                     hi < 1.5 * lo);
    }
  }
  verdicts.Check("CFR-A new-domain error grows with shift magnitude",
                 cfr_a_new_by_shift[0] > cfr_a_new_by_shift[2] &&
                     cfr_a_new_by_shift[1] > cfr_a_new_by_shift[2]);

  std::printf("\ntotal time: %.1fs\n", timer.ElapsedSeconds());
  MaybeWriteCsv(flags, csv, "table1_news.csv");
  verdicts.Summary();
  return 0;
}

}  // namespace
}  // namespace cerl::bench

int main(int argc, char** argv) {
  cerl::Flags flags(argc, argv);
  return cerl::bench::Run(flags);
}
