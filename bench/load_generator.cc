// Tail-latency SLO bench: hundreds of Zipf-skewed tenants driven by an
// open-loop Poisson arrival schedule (stream/workload_gen.h), A/B over the
// engine's schedule policy.
//
// The two policies run PAIRED inside each benchmark iteration — round-robin
// (legacy FIFO) immediately followed by cost-aware (LEQF + stealing) on the
// identical workload — so both arms of a pair see the same machine regime.
// On a noisy shared host the speed can drift 2x over a few seconds; paired
// arms turn that from an arm-level bias into per-pair noise that the
// 5-pair mean averages out.
//
// The interesting outputs are the user counters, not real_time: rr_/ca_
// p50/p99/p999 domain-completion latency (push to migrated, ms), the cost
// model's mean absolute percentage error, the steal count, and p99_win
// (mean per-pair rr_p99/ca_p99). CI gates the pair: mean cost-aware p99
// must stay well below mean round-robin p99 at equal throughput
// (tools/compare_bench.py --pair ...#ca_p99_ms ...#rr_p99_ms).
//
// Why round-robin's tail is worse: a backlogged tenant's strand re-enters
// the FIFO behind every other ready stream after each stage, so it drains
// one stage per cycle of the whole ready set; under LEQF its expected
// pending work keeps it at the top of the ready order and it drains
// back-to-back the moment workers free up, while light tenants still
// proceed on the remaining workers (each stream can hold at most one
// worker). Both policies are work-conserving and compute bit-identical
// results — only completion TIMES differ.
#include <benchmark/benchmark.h>

#include "stream/workload_gen.h"

namespace cerl {
namespace {

void BM_LoadSkewedTenants(benchmark::State& state) {
  stream::WorkloadConfig config;
  config.num_tenants = 240;
  config.domains_per_tenant = 6;
  config.burst_size = 6;  // whole backlog arrives at once per tenant
  config.zipf_exponent = 1.1;
  config.min_units = 16;
  config.max_units = 320;
  config.features = 6;
  config.epochs = 3;
  // Slightly past calibrated capacity: queues are guaranteed to form (from
  // skew, bursts, and mild oversubscription) even when the host speeds up
  // between calibration and measurement, but far from deep overload (where
  // every scheduler's tail is the drain time and ready-queue order is
  // irrelevant). The separating band is middling congestion.
  config.utilization = 1.0;
  config.seed = 99;
  // Fixed small worker count: the scheduling regime of interest is
  // streams >> workers, and it keeps the A/B comparable across machines.
  config.engine.num_workers = 4;

  double rr_p50 = 0, rr_p99 = 0, rr_p999 = 0, rr_tput = 0;
  double ca_p50 = 0, ca_p99 = 0, ca_p999 = 0, ca_tput = 0;
  double err = 0, steals = 0, win = 0;
  int runs = 0;
  for (auto _ : state) {
    config.engine.schedule_policy = stream::SchedulePolicy::kRoundRobin;
    const stream::LoadReport rr = stream::RunSkewedLoad(config);
    config.engine.schedule_policy = stream::SchedulePolicy::kCostAware;
    const stream::LoadReport ca = stream::RunSkewedLoad(config);
    rr_p50 += rr.p50_ms;
    rr_p99 += rr.p99_ms;
    rr_p999 += rr.p999_ms;
    rr_tput += rr.throughput_dps;
    ca_p50 += ca.p50_ms;
    ca_p99 += ca.p99_ms;
    ca_p999 += ca.p999_ms;
    ca_tput += ca.throughput_dps;
    err += ca.cost_model_error;
    steals += static_cast<double>(ca.steals);
    win += ca.p99_ms > 0 ? rr.p99_ms / ca.p99_ms : 0.0;
    ++runs;
  }
  const double inv = runs > 0 ? 1.0 / runs : 0.0;
  state.counters["rr_p50_ms"] = rr_p50 * inv;
  state.counters["rr_p99_ms"] = rr_p99 * inv;
  state.counters["rr_p999_ms"] = rr_p999 * inv;
  state.counters["rr_throughput_dps"] = rr_tput * inv;
  state.counters["ca_p50_ms"] = ca_p50 * inv;
  state.counters["ca_p99_ms"] = ca_p99 * inv;
  state.counters["ca_p999_ms"] = ca_p999 * inv;
  state.counters["ca_throughput_dps"] = ca_tput * inv;
  state.counters["cost_err"] = err * inv;
  state.counters["steals"] = steals * inv;
  state.counters["p99_win"] = win * inv;
  state.SetLabel("paired rr/ca");
}
// Fixed 5 iterations (pairs): one load run is a single draw from a noisy
// host; the counters report the 5-pair mean, which is what the CI pair gate
// compares. (min_time would stop at 1 iteration — a pair exceeds it.)
BENCHMARK(BM_LoadSkewedTenants)
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace cerl
